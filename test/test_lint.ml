(* Fixture tests for the logitlint engine (tools/lint): per syntactic
   rule a positive snippet, a negative snippet, and a suppressed
   snippet, all driven through the real file-parsing path via a temp
   tree; per typed rule the same trio driven through the real .cmt
   path — fixtures are compiled with `ocamlc -bin-annot` at test time
   (stub Pool/Unix modules stand in for the real dependencies) and
   analysed from their actual cmt files. *)

open Helpers
module L = Lint_engine.Lint
module S = Lint_engine.Syntactic
module T = Lint_engine.Typed
module TR = Lint_engine.Typed_rules
module Loc = Lint_engine.Locator
module D = Lint_engine.Driver
module R = Lint_engine.Rules

(* ---------------- temp-tree plumbing ---------------- *)

let mkdir_p path =
  let segments = String.split_on_char '/' path in
  let start = if String.length path > 0 && path.[0] = '/' then "/" else "" in
  ignore
    (List.fold_left
       (fun acc seg ->
         if seg = "" then acc
         else begin
           let dir = if acc = "" || acc = "/" then acc ^ seg else acc ^ "/" ^ seg in
           if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
           dir
         end)
       start segments)

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
    Sys.rmdir path
  end
  else Sys.remove path

let with_root f =
  let root = Filename.temp_file "logitlint" ".fixtures" in
  Sys.remove root;
  Sys.mkdir root 0o755;
  Fun.protect ~finally:(fun () -> try rm_rf root with Sys_error _ -> ()) (fun () -> f root)

let add root rel contents =
  mkdir_p (Filename.concat root (Filename.dirname rel));
  let oc = open_out (Filename.concat root rel) in
  output_string oc contents;
  close_out oc

(* Lint one fixture file with every syntactic rule; return
   (rule, line, suppressed). *)
let lint_one ?config root rel contents =
  add root rel contents;
  List.map
    (fun (f : L.finding) -> (f.rule, f.line, f.suppressed))
    (S.lint_file ?config ~rules:R.all ~root ~relpath:rel ())

let names fs = List.map (fun (r, _, _) -> r) fs
let check_clean msg fs = check_int msg 0 (List.length fs)

(* ---------------- typed-fixture plumbing ----------------

   Compile [rel] (after its support modules [deps], all sharing one
   include dir) with the real ocamlc at -bin-annot, then run the typed
   rules on the resulting cmt exactly as the driver would. *)

let compile_fixture root rel =
  let dir = Filename.concat root (Filename.dirname rel) in
  let cmd =
    Filename.quote_command "ocamlc" ~stdout:Filename.null ~stderr:Filename.null
      [ "-bin-annot"; "-w"; "-a"; "-c"; "-I"; dir; Filename.concat root rel ]
  in
  if Sys.command cmd <> 0 then
    Alcotest.failf "fixture %s failed to compile" rel

let typed_one ?(deps = []) root rel contents =
  List.iter
    (fun (drel, dcontents) ->
      add root drel dcontents;
      compile_fixture root drel)
    deps;
  add root rel contents;
  compile_fixture root rel;
  let cmt = Filename.concat root (Filename.chop_extension rel ^ ".cmt") in
  let cmt_for r = if r = rel then Some cmt else None in
  let findings, analysed, skipped =
    T.run_pass ~root ~files:[ rel ]
      ~config_for:(fun _ -> L.Config.empty)
      ~rules:TR.all ~cmt_for
  in
  check_int "fixture cmt analysed" 1 analysed;
  check_clean "fixture cmt not skipped" skipped;
  List.map (fun (f : L.finding) -> (f.rule, f.line, f.suppressed)) findings

(* Stub stand-ins for the real dependencies, so fixtures compile with
   a bare ocamlc: path matching in the rules sees the same component
   names ([Pool.parallel_for], [Unix.read], [Unix_error]) as with the
   real libraries. *)
let pool_stub =
  ( "lib/pool.ml",
    "type t = unit\n\
     let parallel_for (_ : t) ~n:(_ : int) (f : int -> unit) = f 0\n\
     let iter_opt (_ : t option) ~cost:(_ : int) ~n:(_ : int) (f : int -> unit) =\n\
    \  f 0\n\
     let map (_ : t) ~n (f : int -> 'a) = Array.init n f\n" )

let unix_stub =
  ( "lib/serve/unix.ml",
    "type error = EINTR | EAGAIN | EBADF\n\
     exception Unix_error of error * string * string\n\
     type file_descr = int\n\
     let read (_ : file_descr) (_ : bytes) (_ : int) (n : int) = n\n\
     let write_substring (_ : file_descr) (_ : string) (_ : int) (n : int) = n\n\
     let close (_ : file_descr) = ()\n\
     let accept (fd : file_descr) = (fd, ())\n" )

(* ---------------- float-equality ---------------- *)

let float_equality_positive () =
  with_root (fun root ->
      let fs =
        lint_one root "lib/a.ml"
          "let f x = x = 1.0\n\
           let g x = x +. 1. <> x\n\
           let h x = compare (Float.abs x) 0.5\n"
      in
      check_int "three findings" 3 (List.length fs);
      List.iter
        (fun (r, _, s) ->
          check_true "rule name" (r = "float-equality");
          check_false "not suppressed" s)
        fs)

let float_equality_negative () =
  with_root (fun root ->
      check_clean "int/no-float comparisons are clean"
        (lint_one root "lib/a.ml"
           "let f x y = x = y\n\
            let g n = n <> 0\n\
            let near a b = Float.abs (a -. b) <= 1e-9\n"))

let float_equality_suppressed () =
  with_root (fun root ->
      let fs =
        lint_one root "lib/a.ml"
          "(* lint: allow float-equality — exact zero intended *)\n\
           let f x = x = 0.\n\
           let same_line y = y <> 1.  (* lint: allow float-equality *)\n"
      in
      check_int "both findings present" 2 (List.length fs);
      List.iter (fun (_, _, s) -> check_true "suppressed" s) fs)

(* ---------------- exn-policy ---------------- *)

let exn_policy_positive () =
  with_root (fun root ->
      let fs =
        lint_one root "lib/a.ml"
          "let f () = failwith \"nope\"\nlet g () = raise (Failure \"nope\")\n"
      in
      check_int "failwith and Failure both flagged" 2
        (List.length (List.filter (( = ) "exn-policy") (names fs))))

let exn_policy_negative () =
  with_root (fun root ->
      (* Outside lib/ the rule does not apply; catching Failure inside
         lib/ (e.g. from float_of_string) stays legal. *)
      check_clean "failwith outside lib/ is fine"
        (lint_one root "bin/a.ml" "let f () = failwith \"nope\"\n");
      check_clean "catching Failure is fine"
        (lint_one root "lib/b.ml"
           "let f s = try float_of_string s with Failure _ -> 0.\n\
            let g () = invalid_arg \"precondition\"\n"))

let exn_policy_suppressed () =
  with_root (fun root ->
      let fs =
        lint_one root "lib/a.ml"
          "(* lint: allow exn-policy — crossing a C boundary *)\n\
           let f () = failwith \"nope\"\n"
      in
      match fs with
      | [ ("exn-policy", 2, true) ] -> ()
      | _ -> Alcotest.fail "expected one suppressed exn-policy finding")

(* ---------------- bare-random ---------------- *)

let bare_random_positive () =
  with_root (fun root ->
      let ml = lint_one root "lib/a.ml" "let x = Random.int 3\n" in
      check_int "expression flagged" 1
        (List.length (List.filter (( = ) "bare-random") (names ml)));
      let mli =
        lint_one root "lib/b.mli" "val f : Random.State.t -> int\n"
      in
      check_int "type in .mli flagged" 1
        (List.length (List.filter (( = ) "bare-random") (names mli)));
      let opened = lint_one root "test/c.ml" "open Random\nlet x = int 3\n" in
      check_int "open Random flagged" 1
        (List.length (List.filter (( = ) "bare-random") (names opened))))

let bare_random_negative () =
  with_root (fun root ->
      check_clean "Prob.Rng draws are clean"
        (lint_one root "lib/a.ml" "let f rng = Prob.Rng.int rng 3\n");
      check_clean "the rng module itself is exempt"
        (lint_one root "lib/prob/rng.ml" "let reseed () = Random.bits ()\n"))

let bare_random_suppressed () =
  with_root (fun root ->
      let fs =
        lint_one root "lib/a.ml"
          "let x = Random.int 3 (* lint: allow bare-random *)\n"
      in
      match fs with
      | [ ("bare-random", 1, true) ] -> ()
      | _ -> Alcotest.fail "expected one suppressed bare-random finding")

(* ---------------- print-in-lib ---------------- *)

let print_in_lib_positive () =
  with_root (fun root ->
      let fs =
        lint_one root "lib/a.ml"
          "let f () = print_endline \"hi\"\n\
           let g () = Printf.printf \"%d\" 3\n\
           let h () = Format.printf \"x\"\n"
      in
      check_int "all three printers flagged" 3
        (List.length (List.filter (( = ) "print-in-lib") (names fs))))

let print_in_lib_negative () =
  with_root (fun root ->
      check_clean "stdout printing outside lib/ is fine"
        (lint_one root "bin/a.ml" "let f () = print_endline \"hi\"\n");
      check_clean "formatter-parameterised printers are fine"
        (lint_one root "lib/b.ml"
           "let pp ppf x = Format.fprintf ppf \"%d\" x\n\
            let pp2 ppf () = Format.pp_print_string ppf \"x\"\n"))

let print_in_lib_config_exempt () =
  with_root (fun root ->
      (* Mirrors lib/experiments/.logitlint: the table renderer is the
         one lib module allowed to print. *)
      let config =
        add root "lib/.logitlint" "disable print-in-lib in table.ml\n";
        L.Config.load (Filename.concat root "lib/.logitlint")
      in
      check_clean "config-exempted file is clean"
        (lint_one ~config root "lib/table.ml"
           "let print t = print_string t\n");
      let other =
        lint_one ~config root "lib/other.ml" "let f () = print_newline ()\n"
      in
      check_int "same config still flags other files" 1
        (List.length (List.filter (( = ) "print-in-lib") (names other))))

(* ---------------- marshal-outside-store ---------------- *)

let marshal_positive () =
  with_root (fun root ->
      let fs =
        lint_one root "lib/a.ml"
          "let dump oc x = Marshal.to_channel oc x []\n\
           let dump2 oc x = output_value oc x\n\
           let load ic = input_value ic\n\
           module M = Marshal\n"
      in
      check_int "Marshal, output_value, input_value and the module alias" 4
        (List.length (List.filter (( = ) "marshal-outside-store") (names fs))))

let marshal_negative () =
  with_root (fun root ->
      check_clean "lib/store/ itself is exempt"
        (lint_one root "lib/store/codec.ml"
           "let roundtrip x = Marshal.from_string (Marshal.to_string x []) 0\n");
      check_clean "ordinary output_string is clean"
        (lint_one root "bin/a.ml"
           "let f oc = output_string oc \"x\"\nlet g () = print_string \"y\"\n"))

let marshal_suppressed () =
  with_root (fun root ->
      let fs =
        lint_one root "bench/a.ml"
          "let size x = Marshal.total_size x 0 (* lint: allow \
           marshal-outside-store *)\n"
      in
      match fs with
      | [ ("marshal-outside-store", 1, true) ] -> ()
      | _ -> Alcotest.fail "expected one suppressed marshal finding")

(* ---------------- bench-json-outside-bench ---------------- *)

let bench_json_positive () =
  with_root (fun root ->
      let fs =
        lint_one root "bench/a.ml"
          "let p = \"BENCH_csr.json\"\n\
           let q dir = Filename.concat dir \"BENCH_new.json\"\n"
      in
      check_int "both filename literals flagged" 2
        (List.length
           (List.filter (( = ) "bench-json-outside-bench") (names fs))))

let bench_json_negative () =
  with_root (fun root ->
      check_clean "lib/bench/ itself owns the filenames"
        (lint_one root "lib/bench/sink.ml"
           "let csr_path = \"BENCH_csr.json\"\n");
      check_clean "non-bench json and non-json bench strings are clean"
        (lint_one root "bin/a.ml"
           "let a = \"history.json\"\n\
            let b = \"BENCH_notes.txt\"\n\
            let c = \"see the BENCH files\"\n"))

let bench_json_suppressed () =
  with_root (fun root ->
      let fs =
        lint_one root "bin/a.ml"
          "let p = \"BENCH_csr.json\" (* lint: allow \
           bench-json-outside-bench *)\n"
      in
      match fs with
      | [ ("bench-json-outside-bench", 1, true) ] -> ()
      | _ -> Alcotest.fail "expected one suppressed bench-json finding")

(* ---------------- wall-clock ---------------- *)

let wall_clock_positive () =
  with_root (fun root ->
      let fs =
        lint_one root "bench/a.ml"
          "let t0 = Unix.gettimeofday ()\n\
           let t1 = Stdlib.Unix.gettimeofday ()\n"
      in
      check_int "qualified and Stdlib-qualified both flagged" 2
        (List.length (List.filter (( = ) "wall-clock") (names fs))))

let wall_clock_negative () =
  with_root (fun root ->
      check_clean "lib/common/ itself is exempt"
        (lint_one root "lib/common/common.ml"
           "let wall_s () = Unix.gettimeofday ()\n");
      check_clean "other Unix calls are clean"
        (lint_one root "bin/a.ml"
           "let s = Unix.sleepf 0.1\nlet g = gettimeofday\n"))

let wall_clock_suppressed () =
  with_root (fun root ->
      let fs =
        lint_one root "bin/a.ml"
          "let t = Unix.gettimeofday () (* lint: allow wall-clock *)\n"
      in
      match fs with
      | [ ("wall-clock", 1, true) ] -> ()
      | _ -> Alcotest.fail "expected one suppressed wall-clock finding")

(* ---------------- mli-coverage (tree rule, via run) ---------------- *)

let mli_coverage_positive () =
  with_root (fun root ->
      add root "lib/bare.ml" "let x = 1\n";
      add root "lib/covered.ml" "let x = 1\n";
      add root "lib/covered.mli" "val x : int\n";
      add root "bin/main.ml" "let () = ()\n";
      let result = D.run ~root ~dirs:[ "lib"; "bin" ] () in
      let v = L.violations result in
      check_int "exactly the uncovered lib module is flagged" 1
        (List.length v);
      match v with
      | [ f ] ->
          check_true "rule" (f.rule = "mli-coverage");
          check_true "file" (f.file = "lib/bare.ml")
      | _ -> ())

let mli_coverage_suppressed () =
  with_root (fun root ->
      add root "lib/bare.ml" "(* lint: allow mli-coverage *)\nlet x = 1\n";
      let result = D.run ~root ~dirs:[ "lib" ] () in
      check_int "suppressed on line 1" 0 (List.length (L.violations result));
      check_int "still reported as suppressed" 1
        (List.length (L.suppressed result)))

(* ---------------- domain-capture (typed) ---------------- *)

let domain_capture_positive () =
  with_root (fun root ->
      (* A genuinely racy closure — run on a real pool, domains race on
         [total] (a lost update TSan flags as a data race on the ref's
         contents) and on [counts] (concurrent unsynchronised
         Array.set). *)
      let fs =
        typed_one ~deps:[ pool_stub ] root "lib/kernels.ml"
          "let total = ref 0.\n\
           let sum_racy pool (data : float array) =\n\
          \  Pool.parallel_for pool ~n:(Array.length data) (fun i ->\n\
          \      total := !total +. data.(i));\n\
          \  !total\n\
           let histogram_racy pool (counts : int array) (xs : int array) =\n\
          \  Pool.parallel_for pool ~n:(Array.length xs) (fun i ->\n\
          \      counts.(xs.(i)) <- counts.(xs.(i)) + 1)\n\
           type acc = { mutable best : float }\n\
           let best_racy pool (a : acc) (data : float array) =\n\
          \  Pool.iter_opt (Some pool) ~cost:1 ~n:(Array.length data) (fun i ->\n\
          \      if data.(i) > a.best then a.best <- data.(i))\n"
      in
      check_int "ref :=, Array.set and mutable-field writes all flagged" 3
        (List.length (List.filter (( = ) "domain-capture") (names fs)));
      List.iter (fun (_, _, s) -> check_false "not suppressed" s) fs)

let domain_capture_negative () =
  with_root (fun root ->
      (* Atomic publication and chunk-local accumulation are the two
         sanctioned shapes; both must stay silent. *)
      check_clean "Atomic and chunk-local writes are clean"
        (typed_one ~deps:[ pool_stub ] root "lib/kernels.ml"
           "let sum_atomic pool (data : float array) =\n\
           \  let hits = Atomic.make 0 in\n\
           \  Pool.parallel_for pool ~n:(Array.length data) (fun i ->\n\
           \      if data.(i) > 0. then Atomic.incr hits);\n\
           \  Atomic.get hits\n\
            let chunk_local pool n =\n\
           \  Pool.parallel_for pool ~n (fun _ ->\n\
           \      let acc = ref 0 in\n\
           \      let scratch = Array.make 4 0 in\n\
           \      for j = 0 to 3 do\n\
           \        acc := !acc + j;\n\
           \        scratch.(j) <- !acc\n\
           \      done;\n\
           \      ignore scratch.(0))\n"))

let domain_capture_ordinary_calls_clean () =
  with_root (fun root ->
      (* The same writes outside a pool dispatch are not the pool's
         business. *)
      check_clean "captured writes outside Pool closures are clean"
        (typed_one ~deps:[ pool_stub ] root "lib/kernels.ml"
           "let total = ref 0.\n\
            let serial_sum (data : float array) =\n\
           \  Array.iter (fun x -> total := !total +. x) data;\n\
           \  !total\n"))

let domain_capture_suppressed () =
  with_root (fun root ->
      let fs =
        typed_one ~deps:[ pool_stub ] root "lib/kernels.ml"
          "let fill pool (dst : float array) =\n\
          \  Pool.parallel_for pool ~n:(Array.length dst) (fun i ->\n\
          \      (* lint: allow domain-capture — one writer per index *)\n\
          \      dst.(i) <- float_of_int i)\n"
      in
      match fs with
      | [ ("domain-capture", _, true) ] -> ()
      | _ -> Alcotest.fail "expected one suppressed domain-capture finding")

(* ---------------- bigarray-boxing (typed) ---------------- *)

let bigarray_boxing_positive () =
  with_root (fun root ->
      let fs =
        typed_one root "lib/panel.ml"
          "let sum ba n =\n\
          \  let acc = ref 0. in\n\
          \  for i = 0 to n - 1 do\n\
          \    acc := !acc +. Bigarray.Array1.get ba i\n\
          \  done;\n\
          \  !acc\n"
      in
      match fs with
      | [ ("bigarray-boxing", 4, false) ] -> ()
      | _ ->
          Alcotest.failf "expected one bigarray-boxing finding at line 4, got %s"
            (String.concat ", " (names fs)))

let bigarray_boxing_negative () =
  with_root (fun root ->
      (* Concrete through an abbreviation: the rule must expand
         [panel] before judging, exactly the Chain.panel shape. *)
      check_clean "annotated (abbreviated) panels are clean"
        (typed_one root "lib/panel.ml"
           "type panel =\n\
           \  (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t\n\
            let sum (ba : panel) n =\n\
           \  let acc = ref 0. in\n\
           \  for i = 0 to n - 1 do\n\
           \    acc := !acc +. Bigarray.Array1.get ba i\n\
           \  done;\n\
           \  !acc\n\
            let made () = Bigarray.Array1.create Bigarray.Float64 Bigarray.C_layout 4\n\
            let peek () = Bigarray.Array1.get (made ()) 0\n"))

let bigarray_boxing_suppressed () =
  with_root (fun root ->
      let fs =
        typed_one root "lib/panel.ml"
          "let first ba =\n\
          \  (* lint: allow bigarray-boxing — cold debug path *)\n\
          \  Bigarray.Array1.get ba 0\n"
      in
      match fs with
      | [ ("bigarray-boxing", 3, true) ] -> ()
      | _ -> Alcotest.fail "expected one suppressed bigarray-boxing finding")

(* ---------------- unchecked-unix-result (typed) ---------------- *)

let unchecked_unix_positive () =
  with_root (fun root ->
      let fs =
        typed_one ~deps:[ unix_stub ] root "lib/serve/conn.ml"
          "let drop fd = Unix.close fd\n\
           let send fd s = ignore (Unix.write_substring fd s 0 (String.length s))\n"
      in
      (* close: unguarded; write_substring: unguarded AND discarded. *)
      check_int "three findings" 3
        (List.length (List.filter (( = ) "unchecked-unix-result") (names fs)));
      List.iter (fun (_, _, s) -> check_false "not suppressed" s) fs)

(* The rule covers lib/ooc too: the segment reader does raw
   lseek+read/write, and an unguarded call there is exactly the kind
   of transient-EINTR bug the rule exists for. *)
let unchecked_unix_ooc_positive () =
  with_root (fun root ->
      let fs =
        typed_one
          ~deps:[ ("lib/ooc/unix.ml", snd unix_stub) ]
          root "lib/ooc/segio.ml"
          "let fetch fd buf len = ignore (Unix.read fd buf 0 len)\n"
      in
      check_int "two findings" 2
        (List.length (List.filter (( = ) "unchecked-unix-result") (names fs)));
      List.iter (fun (_, _, s) -> check_false "not suppressed" s) fs)

let unchecked_unix_ooc_negative () =
  with_root (fun root ->
      check_clean "guarded reads under lib/ooc are clean"
        (typed_one
           ~deps:[ ("lib/ooc/unix.ml", snd unix_stub) ]
           root "lib/ooc/segio.ml"
           "let rec fetch fd buf len =\n\
           \  match Unix.read fd buf 0 len with\n\
           \  | n -> n\n\
           \  | exception Unix.Unix_error (Unix.EINTR, _, _) -> fetch fd buf len\n"))

let unchecked_unix_negative () =
  with_root (fun root ->
      check_clean "guarded and consumed Unix calls are clean"
        (typed_one ~deps:[ unix_stub ] root "lib/serve/conn.ml"
           "let rec read_retry fd buf len =\n\
           \  match Unix.read fd buf 0 len with\n\
           \  | n -> n\n\
           \  | exception Unix.Unix_error (Unix.EINTR, _, _) ->\n\
           \      read_retry fd buf len\n\
            let close_quiet fd = try Unix.close fd with Unix.Unix_error _ -> ()\n\
            let accept_one fd =\n\
           \  try Some (fst (Unix.accept fd))\n\
           \  with Unix.Unix_error (Unix.EAGAIN, _, _) -> None\n");
      (* The rule only applies under lib/serve, lib/store and lib/ooc. *)
      check_clean "Unix elsewhere is out of scope"
        (typed_one
           ~deps:[ ("lib/unix.ml", snd unix_stub) ]
           root "lib/other.ml" "let drop fd = Unix.close fd\n"))

let unchecked_unix_suppressed () =
  with_root (fun root ->
      let fs =
        typed_one ~deps:[ unix_stub ] root "lib/store/io.ml"
          "let wake fd =\n\
          \  (* lint: allow unchecked-unix-result — any write wakes the loop *)\n\
          \  ignore (Unix.write_substring fd \"x\" 0 1)\n"
      in
      check_true "at least one finding" (fs <> []);
      List.iter
        (fun (r, _, s) ->
          check_true "rule" (r = "unchecked-unix-result");
          check_true "suppressed" s)
        fs)

(* ---------------- suppression edge cases ---------------- *)

let suppression_inside_functor () =
  with_root (fun root ->
      let fs =
        lint_one root "lib/a.ml"
          "module F (X : sig val v : float end) = struct\n\
          \  (* lint: allow float-equality — functor body *)\n\
          \  let is_zero = X.v = 0.\n\
           end\n"
      in
      (match fs with
      | [ ("float-equality", 3, true) ] -> ()
      | _ -> Alcotest.fail "expected one suppressed finding in functor body");
      let unsuppressed =
        lint_one root "lib/b.ml"
          "module F (X : sig val v : float end) = struct\n\
          \  let is_zero = X.v = 0.\n\
           end\n"
      in
      match unsuppressed with
      | [ ("float-equality", 2, false) ] -> ()
      | _ -> Alcotest.fail "expected one live finding in functor body")

let suppression_names_multiple_rules () =
  with_root (fun root ->
      let fs =
        lint_one root "lib/a.ml"
          "(* lint: allow exn-policy float-equality *)\n\
           let f x = if x = 0. then failwith \"both suppressed\" else ()\n"
      in
      check_int "both findings present" 2 (List.length fs);
      List.iter (fun (_, _, s) -> check_true "suppressed" s) fs)

let suppression_wrong_rule_does_not_cover () =
  with_root (fun root ->
      let fs =
        lint_one root "lib/a.ml"
          "(* lint: allow exn-policy *)\nlet f x = x = 0.\n"
      in
      match fs with
      | [ ("float-equality", 2, false) ] -> ()
      | _ -> Alcotest.fail "a comment naming another rule must not suppress")

(* ---------------- engine plumbing ---------------- *)

let parse_error_reported () =
  with_root (fun root ->
      let fs = lint_one root "lib/bad.ml" "let let let = in in\n" in
      match fs with
      | [ (rule, _, suppressed) ] ->
          check_true "parse-error rule" (rule = S.parse_error_rule);
          check_false "never suppressed" suppressed
      | _ -> Alcotest.fail "expected exactly one parse-error finding")

let config_error_raises () =
  with_root (fun root ->
      add root ".logitlint" "frobnicate the-rule\n";
      match L.Config.load (Filename.concat root ".logitlint") with
      | exception L.Config_error _ -> ()
      | _ -> Alcotest.fail "expected Config_error on a malformed directive")

let subtree_config_inherited () =
  with_root (fun root ->
      add root "lib/.logitlint" "disable exn-policy\n";
      add root "lib/deep/nested.ml" "let f () = failwith \"ok here\"\n";
      add root "lib/deep/nested.mli" "val f : unit -> 'a\n";
      let result = D.run ~root ~dirs:[ "lib" ] () in
      check_int "directive applies to the whole subtree" 0
        (List.length (L.violations result)))

let timing_reported () =
  with_root (fun root ->
      add root "lib/a.ml" "let x = 1\n";
      add root "lib/a.mli" "val x : int\n";
      let result = D.run ~root ~dirs:[ "lib" ] () in
      check_true "syntactic wall time is measured"
        (result.L.syntactic_ms >= 0.);
      let json = L.to_json ~root result in
      check_true "json reports syntactic_ms"
        (contains_substring json "\"syntactic_ms\"");
      check_true "json reports typed_ms" (contains_substring json "\"typed_ms\"");
      check_true "json reports typed_files"
        (contains_substring json "\"typed_files\""))

let typed_pass_skips_without_cmt () =
  with_root (fun root ->
      add root "lib/a.ml" "let x = 1\n";
      add root "lib/a.mli" "val x : int\n";
      (* No _build tree: the typed pass must degrade to a skip, never
         an error. *)
      let result = D.run ~root ~dirs:[ "lib" ] ~typed:true ~locator:Loc.Scan () in
      check_int "nothing analysed" 0 result.L.typed_files;
      check_true "the .ml is reported as skipped"
        (List.mem "lib/a.ml" result.L.typed_skipped);
      check_int "no violations invented" 0 (List.length (L.violations result)))

(* ---------------- locator ---------------- *)

let canned_describe =
  "((root /workspace_root)\n\
  \ (build_context _build/default)\n\
  \ (executables\n\
  \  ((names (main))\n\
  \   (modules\n\
  \    (((name Main)\n\
  \      (impl (_build/default/bin/main.ml))\n\
  \      (intf ())\n\
  \      (cmt (_build/default/bin/.main.eobjs/byte/dune__exe__Main.cmt))\n\
  \      (cmti ()))))))\n\
  \ (library\n\
  \  ((name markov)\n\
  \   (modules\n\
  \    (((name Chain)\n\
  \      (impl (_build/default/lib/markov/chain.ml))\n\
  \      (intf (_build/default/lib/markov/chain.mli))\n\
  \      (cmt (_build/default/lib/markov/.markov.objs/byte/markov__Chain.cmt))\n\
  \      (cmti (_build/default/lib/markov/.markov.objs/byte/markov__Chain.cmti)))\n\
  \     ((name Intf_only)\n\
  \      (impl ())\n\
  \      (intf (_build/default/lib/markov/intf_only.mli))\n\
  \      (cmt ())\n\
  \      (cmti ())))))))\n"

let locator_parses_describe_output () =
  let pairs = Loc.parse_describe canned_describe in
  check_int "two modules with both impl and cmt" 2 (List.length pairs);
  check_true "library module mapped"
    (List.mem_assoc "lib/markov/chain.ml" pairs);
  check_true "executable module mapped" (List.mem_assoc "bin/main.ml" pairs);
  check_true "library cmt path kept verbatim"
    (List.assoc "lib/markov/chain.ml" pairs
    = "_build/default/lib/markov/.markov.objs/byte/markov__Chain.cmt")

let locator_scan_inverts_dune_layout () =
  with_root (fun root ->
      add root "lib/m/foo.ml" "let x = 1\n";
      add root "bin/tool.ml" "let () = ()\n";
      add root "_build/default/lib/m/.m.objs/byte/m__Foo.cmt" "";
      (* wrapper/alias module: no source, must drop out *)
      add root "_build/default/lib/m/.m.objs/byte/m.cmt" "";
      add root "_build/default/bin/.tool.eobjs/byte/dune__exe__Tool.cmt" "";
      let pairs = Loc.scan_build ~root in
      check_int "exactly the two real modules" 2 (List.length pairs);
      check_true "library module inverted" (List.mem_assoc "lib/m/foo.ml" pairs);
      check_true "executable module inverted"
        (List.mem_assoc "bin/tool.ml" pairs))

let locator_sexp_parser_handles_quotes_and_comments () =
  match Loc.parse_sexps "; comment\n(a \"b c\" (d))" with
  | [ Loc.List [ Loc.Atom "a"; Loc.Atom "b c"; Loc.List [ Loc.Atom "d" ] ] ] ->
      ()
  | _ -> Alcotest.fail "sexp parse mismatch"

(* ---------------- the acceptance gate ---------------- *)

let whole_repo_is_clean () =
  (* The acceptance gate, as a test: the shipped tree carries zero
     unsuppressed violations, syntactic AND typed. Dune runs tests
     inside _build, where dotfiles like .logitlint are not copied, so
     walk the real source tree via DUNE_SOURCEROOT (set by dune for
     every test action). The typed pass uses the scan locator (`dune
     describe` would deadlock against the dune that is running this
     test) over the cmts of the build that produced this binary;
     sources without a cmt are skips, not failures, so a partial
     build cannot fail the gate spuriously. *)
  match Sys.getenv_opt "DUNE_SOURCEROOT" with
  | None -> ()
  | Some root when
      not (Sys.file_exists (Filename.concat root "lib/experiments/.logitlint"))
    ->
      Alcotest.fail "source root is missing lib/experiments/.logitlint"
  | Some root ->
      let result = D.run ~root ~typed:true ~locator:Loc.Scan () in
      List.iter
        (fun (f : L.finding) ->
          Alcotest.failf "unsuppressed violation: %s:%d [%s] %s" f.file f.line
            f.rule f.message)
        (L.violations result)

let suites =
  [
    ( "lint.float-equality",
      [
        test "positive" float_equality_positive;
        test "negative" float_equality_negative;
        test "suppressed" float_equality_suppressed;
      ] );
    ( "lint.exn-policy",
      [
        test "positive" exn_policy_positive;
        test "negative" exn_policy_negative;
        test "suppressed" exn_policy_suppressed;
      ] );
    ( "lint.bare-random",
      [
        test "positive" bare_random_positive;
        test "negative" bare_random_negative;
        test "suppressed" bare_random_suppressed;
      ] );
    ( "lint.print-in-lib",
      [
        test "positive" print_in_lib_positive;
        test "negative" print_in_lib_negative;
        test "config exemption" print_in_lib_config_exempt;
      ] );
    ( "lint.marshal-outside-store",
      [
        test "positive" marshal_positive;
        test "negative" marshal_negative;
        test "suppressed" marshal_suppressed;
      ] );
    ( "lint.bench-json-outside-bench",
      [
        test "positive" bench_json_positive;
        test "negative" bench_json_negative;
        test "suppressed" bench_json_suppressed;
      ] );
    ( "lint.wall-clock",
      [
        test "positive" wall_clock_positive;
        test "negative" wall_clock_negative;
        test "suppressed" wall_clock_suppressed;
      ] );
    ( "lint.mli-coverage",
      [
        test "positive" mli_coverage_positive;
        test "suppressed" mli_coverage_suppressed;
      ] );
    ( "lint.domain-capture",
      [
        test "positive (racy closure)" domain_capture_positive;
        test "negative (Atomic, chunk-local)" domain_capture_negative;
        test "negative (no pool dispatch)" domain_capture_ordinary_calls_clean;
        test "suppressed" domain_capture_suppressed;
      ] );
    ( "lint.bigarray-boxing",
      [
        test "positive (inferred polymorphic)" bigarray_boxing_positive;
        test "negative (abbreviated concrete)" bigarray_boxing_negative;
        test "suppressed" bigarray_boxing_suppressed;
      ] );
    ( "lint.unchecked-unix-result",
      [
        test "positive (unguarded, discarded)" unchecked_unix_positive;
        test "negative (guarded, out of scope)" unchecked_unix_negative;
        test "positive under lib/ooc" unchecked_unix_ooc_positive;
        test "negative under lib/ooc" unchecked_unix_ooc_negative;
        test "suppressed" unchecked_unix_suppressed;
      ] );
    ( "lint.suppression",
      [
        test "inside a functor body" suppression_inside_functor;
        test "one comment can allow several rules" suppression_names_multiple_rules;
        test "naming another rule does not cover" suppression_wrong_rule_does_not_cover;
      ] );
    ( "lint.locator",
      [
        test "parses dune describe output" locator_parses_describe_output;
        test "scan inverts dune's _build layout" locator_scan_inverts_dune_layout;
        test "sexp reader: quotes and comments" locator_sexp_parser_handles_quotes_and_comments;
      ] );
    ( "lint.engine",
      [
        test "parse errors become findings" parse_error_reported;
        test "malformed config raises" config_error_raises;
        test "config inherited down the subtree" subtree_config_inherited;
        test "wall time measured and reported" timing_reported;
        test "typed pass skips without cmts" typed_pass_skips_without_cmt;
        test "whole repo is clean (syntactic + typed)" whole_repo_is_clean;
      ] );
  ]
