(** Blocking client for the logitdynd socket.

    Supports pipelining: send any number of requests, then collect the
    responses in order — the server answers a client's requests in the
    order they were sent. The load bench and the coalescing tests use
    this to pile concurrent work onto a single server iteration. *)

type t

val connect : socket_path:string -> (t, string) result

val close : t -> unit

(** A fresh client-unique request id (1, 2, ...). *)
val fresh_id : t -> int

(** [send t req] writes one framed request (blocking until fully
    written); pair with {!recv}. *)
val send : t -> Protocol.request -> (unit, string) result

(** [recv t] blocks for the next complete response frame. *)
val recv : t -> (Protocol.response, string) result

(** [call t ?deadline_ms query] sends one request and waits for its
    response, checking the echoed id. The outer [Error] is transport
    failure; the inner result is the server's verdict. *)
val call :
  t -> ?deadline_ms:int -> Protocol.query ->
  ((Protocol.reply, Protocol.error) result, string) result

(** One-shot convenience: connect, {!call}, close. *)
val query :
  socket_path:string -> ?deadline_ms:int -> Protocol.query ->
  ((Protocol.reply, Protocol.error) result, string) result
