let rates ~players ~beta phi k =
  let bd = Lumping.weight_symmetric ~players ~beta phi in
  (Markov.Birth_death.up bd k, Markov.Birth_death.down bd k)

let drift ~players ~beta phi k =
  if k < 0 || k > players then invalid_arg "Mean_field.drift: weight out of range";
  let up, down = rates ~players ~beta phi k in
  up -. down

let fixed_points ~players ~beta phi =
  let d = Array.init (players + 1) (fun k -> drift ~players ~beta phi k) in
  let out = ref [] in
  (* Endpoints: stable when the flow pushes into the boundary. *)
  if d.(0) <= 0. then out := (0, `Stable) :: !out;
  if d.(players) >= 0. then out := (players, `Stable) :: !out;
  for k = 0 to players - 1 do
    if d.(k) > 0. && d.(k + 1) < 0. then
      (* Flow converges between k and k+1: attribute to the side with
         the smaller drift magnitude. *)
      out :=
        ((if Float.abs d.(k) <= Float.abs d.(k + 1) then k else k + 1), `Stable)
        :: !out
    else if d.(k) < 0. && d.(k + 1) > 0. then
      out :=
        ((if Float.abs d.(k) <= Float.abs d.(k + 1) then k else k + 1), `Unstable)
        :: !out
      (* lint: allow float-equality — symmetric games zero the drift exactly at the midpoint *)
    else if d.(k) = 0. && k > 0 && k < players then
      out := (k, if d.(k - 1) > 0. && d.(k + 1) < 0. then `Stable else `Unstable) :: !out
  done;
  List.sort_uniq compare !out

let trajectory ~players ~beta phi ~start ~steps =
  if start < 0. || start > float_of_int players then
    invalid_arg "Mean_field.trajectory: start out of range";
  if steps < 0 then invalid_arg "Mean_field.trajectory: negative steps";
  let out = Array.make (steps + 1) start in
  for t = 1 to steps do
    let x = out.(t - 1) in
    let k = int_of_float (Float.round x) in
    let k = Int.max 0 (Int.min players k) in
    let next = x +. drift ~players ~beta phi k in
    out.(t) <- Float.max 0. (Float.min (float_of_int players) next)
  done;
  out

let clique_fixed_points ~n ~delta0 ~delta1 ~beta =
  fixed_points ~players:n ~beta (fun k ->
      Games.Graphical.clique_potential ~n ~delta0 ~delta1 k)
