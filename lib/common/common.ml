exception No_convergence of string

let () =
  Printexc.register_printer (function
    | No_convergence msg -> Some (Printf.sprintf "No_convergence(%s)" msg)
    | _ -> None)

let no_convergence fmt =
  Printf.ksprintf (fun msg -> raise (No_convergence msg)) fmt

let feq ~eps a b =
  if eps < 0. || Float.is_nan eps then invalid_arg "Common.feq: need eps >= 0";
  Float.abs (a -. b) <= eps

module Clock = struct
  external clock_ns : bool -> int64 = "logitdyn_clock_ns"

  let monotonic_ns () =
    let t = clock_ns true in
    if Int64.compare t 0L >= 0 then t
    else
      (* Documented fallback: a host without CLOCK_MONOTONIC degrades
         to the wall clock — durations are then subject to clock
         steps, but the API keeps working. *)
      clock_ns false

  let span_s ~since =
    Int64.to_float (Int64.sub (monotonic_ns ()) since) /. 1e9

  let wall_s () = Int64.to_float (clock_ns false) /. 1e9
end
