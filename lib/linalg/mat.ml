type t = { rows : int; cols : int; data : float array }

let check_dims rows cols =
  if rows < 0 || cols < 0 then invalid_arg "Mat: negative dimension"

let create rows cols x =
  check_dims rows cols;
  { rows; cols; data = Array.make (rows * cols) x }

let init rows cols f =
  check_dims rows cols;
  { rows; cols; data = Array.init (rows * cols) (fun k -> f (k / cols) (k mod cols)) }

let identity n = init n n (fun i j -> if i = j then 1. else 0.)

let of_rows rows =
  let r = Array.length rows in
  if r = 0 then invalid_arg "Mat.of_rows: empty";
  let c = Array.length rows.(0) in
  Array.iter
    (fun row -> if Array.length row <> c then invalid_arg "Mat.of_rows: ragged rows")
    rows;
  init r c (fun i j -> rows.(i).(j))

let copy m = { m with data = Array.copy m.data }
let get m i j = m.data.((i * m.cols) + j)
let set m i j x = m.data.((i * m.cols) + j) <- x
let dims m = (m.rows, m.cols)
let row m i = Array.sub m.data (i * m.cols) m.cols
let col m j = Array.init m.rows (fun i -> get m i j)
let transpose m = init m.cols m.rows (fun i j -> get m j i)

let check_same_dims name a b =
  if a.rows <> b.rows || a.cols <> b.cols then
    invalid_arg (Printf.sprintf "Mat.%s: dimension mismatch" name)

let add a b =
  check_same_dims "add" a b;
  { a with data = Array.mapi (fun k x -> x +. b.data.(k)) a.data }

let sub a b =
  check_same_dims "sub" a b;
  { a with data = Array.mapi (fun k x -> x -. b.data.(k)) a.data }

let scale s m = { m with data = Array.map (fun x -> s *. x) m.data }

let mul a b =
  if a.cols <> b.rows then invalid_arg "Mat.mul: inner dimension mismatch";
  let c = create a.rows b.cols 0. in
  for i = 0 to a.rows - 1 do
    for k = 0 to a.cols - 1 do
      let aik = get a i k in
      (* lint: allow float-equality — exact-zero skip of absent entries *)
      if aik <> 0. then
        for j = 0 to b.cols - 1 do
          set c i j (get c i j +. (aik *. get b k j))
        done
    done
  done;
  c

let mulv m x =
  if m.cols <> Array.length x then invalid_arg "Mat.mulv: dimension mismatch";
  Array.init m.rows (fun i ->
      let acc = ref 0. in
      for j = 0 to m.cols - 1 do
        acc := !acc +. (get m i j *. x.(j))
      done;
      !acc)

let vmul x m =
  if m.rows <> Array.length x then invalid_arg "Mat.vmul: dimension mismatch";
  Array.init m.cols (fun j ->
      let acc = ref 0. in
      for i = 0 to m.rows - 1 do
        acc := !acc +. (x.(i) *. get m i j)
      done;
      !acc)

let is_square m = m.rows = m.cols

let pow m k =
  if not (is_square m) then invalid_arg "Mat.pow: non-square matrix";
  if k < 0 then invalid_arg "Mat.pow: negative exponent";
  let rec go acc base k =
    if k = 0 then acc
    else
      let acc = if k land 1 = 1 then mul acc base else acc in
      go acc (mul base base) (k lsr 1)
  in
  go (identity m.rows) m k

let trace m =
  if not (is_square m) then invalid_arg "Mat.trace: non-square matrix";
  let acc = ref 0. in
  for i = 0 to m.rows - 1 do
    acc := !acc +. get m i i
  done;
  !acc

let is_symmetric ?(tol = 1e-9) m =
  is_square m
  &&
  let ok = ref true in
  for i = 0 to m.rows - 1 do
    for j = i + 1 to m.cols - 1 do
      if Float.abs (get m i j -. get m j i) > tol then ok := false
    done
  done;
  !ok

let max_abs_offdiag m =
  if not (is_square m) || m.rows < 2 then
    invalid_arg "Mat.max_abs_offdiag: need a square matrix of order >= 2";
  let bi = ref 0 and bj = ref 1 and bv = ref (Float.abs (get m 0 1)) in
  for i = 0 to m.rows - 1 do
    for j = i + 1 to m.cols - 1 do
      let v = Float.abs (get m i j) in
      if v > !bv then begin
        bi := i;
        bj := j;
        bv := v
      end
    done
  done;
  (!bi, !bj, !bv)

let approx_equal ?(tol = 1e-9) a b =
  a.rows = b.rows && a.cols = b.cols
  &&
  let ok = ref true in
  Array.iteri
    (fun k x -> if Float.abs (x -. b.data.(k)) > tol then ok := false)
    a.data;
  !ok

let pp ppf m =
  for i = 0 to m.rows - 1 do
    Format.fprintf ppf "@[<h>";
    for j = 0 to m.cols - 1 do
      if j > 0 then Format.fprintf ppf " ";
      Format.fprintf ppf "%10.6g" (get m i j)
    done;
    Format.fprintf ppf "@]@,"
  done
