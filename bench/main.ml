(* Benchmark harness.

   Phase 1 regenerates every experiment table of DESIGN.md /
   EXPERIMENTS.md (the paper has no numeric tables of its own; the
   theorem-indexed experiments E1..E9 play that role).

   Phase 2 runs Bechamel micro-benchmarks of the hot kernels plus the
   ablation pairs called out in DESIGN.md:
   - sparse evolve vs dense matrix-vector product,
   - lumped birth-death step vs full-chain step,
   - deflated power iteration vs full Jacobi for lambda_2,
   - logit transition-row construction and coupling steps.

   Phase 1.5 times the multicore execution layer against the serial
   kernels it replaces (same inputs, results checked for agreement):
   chain materialisation, the all-starts TV sweep, mixing_time_all,
   Monte Carlo empirical TV, and CFTP replicas. --jobs N picks the
   pool size (default: the machine's recommended domain count, at
   least 2).

   Phase 1.6 is the CSR storage ablation: the pre-CSR chain kernels
   (boxed tuple rows, allocating evolve, linear-scan sampling) are kept
   alive in the [Baseline] module below and raced against the CSR
   kernels on an evolve-dominated workload (mixing_time_all) and a
   sample_step-dominated one (empirical_tv). Outputs are checked
   bit-identical and the timings are written to BENCH_csr.json so the
   perf trajectory is tracked from PR 2 onward.

   Phase 1.7 is the artifact-store ablation: the `logitdyn mixing`
   artifact pipeline (chain, stationary law, TV curve) is run cold and
   then warm against a fresh store, the decoded artifacts are checked
   bit-identical to the computed ones, and a killed-mid-grid sweep is
   resumed through Sweep.map_cached. Timings land in BENCH_store.json.

   Phase 1.8 is the kernel-mode ablation for distribution evolution:
   the PR 2 serial push (scatter) loop over all starts is raced against
   (a) the pull (gather) kernel over the transposed layout with the
   starts chunked across domains and (b) the blocked SpMM panel kernel
   [Chain.evolve_many_into] that advances all starts in one matrix
   traversal, serial and pooled. All arms are gated on bit-identical
   outputs (same t_mix, same TV curve, evolve checked on random
   vectors); timings land in BENCH_spmm.json.

   Phase 1.9 is the daemon load bench: a logitdynd server is spun up
   on a private socket and (a) 8 clients race one same-chain mixing
   request each — answered serially vs through the server's coalesced
   panel sweep, gated on bit-identical replies — and (b) an open-loop
   sender offers requests at a fixed rate regardless of completions
   and the p50/p99 response latencies and achieved throughput land in
   BENCH_serve.json.

   Phase 1.10 is the out-of-core segment ablation: a lazy cycle walk
   is packed into an on-disk segment (10^7 states in the full profile
   — past anything the in-RAM path is asked to hold) and the TV sweep
   is run over the streaming kernels, mmap'd serial and pooled and in
   bounded-buffer stream mode with the peak RSS sampled. All arms are
   gated on bit-identity against the in-RAM SpMM kernels at overlap
   sizes; timings land in BENCH_ooc.json.

   Pass --quick to shrink the experiment sweeps; pass --skip-micro to
   print only the tables; pass --csr-only, --store-only, --spmm-only,
   --serve-only, --ooc-only or --family-only to run just that
   ablation (phase 1.11 is the β-family one). *)

open Bechamel
open Toolkit

let quick = Array.exists (( = ) "--quick") Sys.argv
let skip_micro = Array.exists (( = ) "--skip-micro") Sys.argv
let csr_only = Array.exists (( = ) "--csr-only") Sys.argv
let store_only = Array.exists (( = ) "--store-only") Sys.argv
let spmm_only = Array.exists (( = ) "--spmm-only") Sys.argv
let serve_only = Array.exists (( = ) "--serve-only") Sys.argv
let ooc_only = Array.exists (( = ) "--ooc-only") Sys.argv
let family_only = Array.exists (( = ) "--family-only") Sys.argv

(* Every ablation snapshot leaves through the bench sink, which owns
   the BENCH filenames: it writes the legacy snapshot atomically and
   appends the migrated, provenance-stamped records to the
   BENCH_HISTORY.json trajectory in one step. A snapshot the sink
   cannot migrate is a bug in the writer above — fail the run. *)
let record_snapshot ~label ~legacy_path json =
  match Bench.Sink.record_run ~legacy_path json with
  | Ok records ->
      Printf.printf "%s recorded to %s (+%d trajectory records in %s)\n" label
        legacy_path (List.length records) Bench.History.default_path
  | Error msg ->
      Printf.eprintf "FATAL: %s snapshot rejected by the bench sink: %s\n"
        label msg;
      exit 1

let jobs =
  let rec find i =
    if i + 1 >= Array.length Sys.argv then None
    else if Sys.argv.(i) = "--jobs" then int_of_string_opt Sys.argv.(i + 1)
    else find (i + 1)
  in
  match find 1 with
  | Some j when j >= 2 -> j
  | _ -> Int.max 2 (Domain.recommended_domain_count ())

(* --- Phase 2 fixtures ------------------------------------------------ *)

let ring_desc =
  Games.Graphical.create (Graphs.Generators.ring 10)
    (Games.Coordination.of_deltas ~delta0:1.0 ~delta1:1.0)

let ring_game = Games.Graphical.to_game ring_desc
let beta = 1.0
let ring_chain = lazy (Logit.Logit_dynamics.chain ring_game ~beta)

let ring_dense = lazy (Markov.Chain.to_dense (Lazy.force ring_chain))

let clique_bd = lazy (Logit.Lumping.clique ~n:64 ~delta0:1.0 ~delta1:1.0 ~beta)
let clique_bd_chain = lazy (Markov.Birth_death.to_chain (Lazy.force clique_bd))

let small_desc =
  Games.Graphical.create (Graphs.Generators.ring 6)
    (Games.Coordination.of_deltas ~delta0:1.0 ~delta1:1.0)

let small_game = Games.Graphical.to_game small_desc
let small_chain = lazy (Logit.Logit_dynamics.chain small_game ~beta)

let small_pi =
  lazy
    (Logit.Gibbs.stationary (Games.Game.space small_game)
       (Games.Graphical.potential small_desc)
       ~beta)

let tests =
  let uniform_vector n = Array.make n (1. /. float_of_int n) in
  [
    Test.make ~name:"logit/transition-row"
      (Staged.stage (fun () ->
           ignore (Logit.Logit_dynamics.transition_row ring_game ~beta 511)));
    Test.make ~name:"kernel/matvec-sparse"
      (Staged.stage (fun () ->
           let chain = Lazy.force ring_chain in
           ignore (Markov.Chain.evolve chain (uniform_vector 1024))));
    Test.make ~name:"kernel/matvec-dense"
      (Staged.stage (fun () ->
           let dense = Lazy.force ring_dense in
           ignore (Linalg.Mat.vmul (uniform_vector 1024) dense)));
    Test.make ~name:"kernel/lumping-bd-step"
      (Staged.stage (fun () ->
           let chain = Lazy.force clique_bd_chain in
           ignore (Markov.Chain.evolve chain (uniform_vector 65))));
    Test.make ~name:"kernel/lambda2-power"
      (Staged.stage (fun () ->
           let chain = Lazy.force small_chain in
           ignore (Markov.Spectral.lambda2 ~tol:1e-9 chain (Lazy.force small_pi))));
    Test.make ~name:"kernel/lambda2-jacobi"
      (Staged.stage (fun () ->
           let chain = Lazy.force small_chain in
           ignore (Markov.Spectral.spectrum chain (Lazy.force small_pi))));
    Test.make ~name:"logit/simulate-step"
      (Staged.stage
         (let rng = Prob.Rng.create 1 in
          let state = ref 0 in
          fun () -> state := Logit.Logit_dynamics.step rng ring_game ~beta !state));
    Test.make ~name:"logit/coupling-step"
      (Staged.stage
         (let rng = Prob.Rng.create 2 in
          let step = Logit.Dynamics.interval_coupling ring_game ~beta in
          let pair = ref (0, 1023) in
          fun () -> pair := step rng !pair));
    Test.make ~name:"barrier/zeta-ring10"
      (Staged.stage (fun () ->
           ignore
             (Logit.Barrier.zeta (Games.Game.space ring_game)
                (Games.Graphical.potential ring_desc))));
    Test.make ~name:"graphs/cutwidth-exact-n12"
      (Staged.stage (fun () ->
           ignore (Graphs.Cutwidth.exact (Graphs.Generators.ring 12))));
    Test.make ~name:"logit/metropolis-step"
      (Staged.stage
         (let rng = Prob.Rng.create 3 in
          let state = ref 0 in
          fun () -> state := Logit.Metropolis.step rng ring_game ~beta !state));
    Test.make ~name:"logit/cftp-exact-sample"
      (Staged.stage
         (let rng = Prob.Rng.create 4 in
          fun () ->
            ignore (Logit.Perfect_sampling.sample rng small_game ~beta)));
    Test.make ~name:"logit/transfer-matrix-n1000"
      (Staged.stage
         (let phi =
            Games.Coordination.edge_potential
              (Games.Coordination.of_deltas ~delta0:1.0 ~delta1:1.0)
          in
          fun () ->
            let tm = Logit.Transfer_matrix.create ~strategies:2 ~beta:2.0 phi in
            ignore (Logit.Transfer_matrix.log_partition tm ~n:1000)));
    Test.make ~name:"kernel/tridiag-bd-n256"
      (Staged.stage (fun () ->
           let bd = Logit.Lumping.clique ~n:255 ~delta0:1.0 ~delta1:1.0 ~beta:0.01 in
           ignore (Markov.Birth_death.decomposition bd)));
  ]

(* --- Phase 1.5: serial vs parallel ablation --------------------------- *)

(* All durations are measured on the monotonic clock: the wall clock
   can step under NTP, and a backwards step would corrupt the
   min-of-reps estimates below by recording a negative or tiny rep. *)
let time f =
  let t0 = Common.Clock.monotonic_ns () in
  let result = f () in
  (result, Common.Clock.span_s ~since:t0)

(* Tiny kernels (full-size by_power is ~5 ms) are noise at single-shot
   granularity: preemption, GC slices and frequency drift all add time,
   never subtract it, so the per-arm *minimum* over interleaved reps is
   the robust estimate of the true cost (mean-of-reps still wobbled
   ±5% between identical arms). Alternate which arm goes first so
   neither slot systematically absorbs events the other one queued up;
   each arm runs once up front for its result (doubling as warm-up). *)
let time_pair ~reps f g =
  let rf = f () in
  let rg = g () in
  let tf = ref infinity in
  let tg = ref infinity in
  let timed cell h =
    let t0 = Common.Clock.monotonic_ns () in
    ignore (h ());
    cell := Float.min !cell (Common.Clock.span_s ~since:t0)
  in
  for rep = 1 to reps do
    if rep land 1 = 0 then (timed tf f; timed tg g)
    else (timed tg g; timed tf f)
  done;
  ((rf, !tf), (rg, !tg))

let chain_equal a b =
  Markov.Chain.size a = Markov.Chain.size b
  && begin
       let ok = ref true in
       for i = 0 to Markov.Chain.size a - 1 do
         if Markov.Chain.row a i <> Markov.Chain.row b i then ok := false
       done;
       !ok
     end

let max_abs_diff a b =
  let d = ref 0. in
  Array.iteri (fun i x -> d := Float.max !d (Float.abs (x -. b.(i)))) a;
  !d

let run_ablation () =
  let n_ring = if quick then 8 else 10 in
  let steps = if quick then 50 else 200 in
  let replicas = if quick then 2_000 else 20_000 in
  let cftp_count = if quick then 200 else 1_000 in
  let desc =
    Games.Graphical.create (Graphs.Generators.ring n_ring)
      (Games.Coordination.of_deltas ~delta0:1.0 ~delta1:1.0)
  in
  let game = Games.Graphical.to_game desc in
  let size = Games.Game.size game in
  let pi =
    Logit.Gibbs.stationary (Games.Game.space game)
      (Games.Graphical.potential desc)
      ~beta
  in
  let starts = List.init size Fun.id in
  Exec.Pool.with_pool ~domains:jobs @@ fun pool ->
  let table =
    Experiments.Table.create
      ~title:
        (Printf.sprintf
           "exec ablation: serial vs %d domains (ring n=%d, |S|=%d, beta=%g)"
           jobs n_ring size beta)
      [
        ("kernel", Experiments.Table.Left);
        ("serial s", Experiments.Table.Right);
        ("parallel s", Experiments.Table.Right);
        ("speedup", Experiments.Table.Right);
        ("agree", Experiments.Table.Right);
      ]
  in
  let add name t_serial t_parallel agree =
    Experiments.Table.add_row table
      [
        name;
        Printf.sprintf "%.3f" t_serial;
        Printf.sprintf "%.3f" t_parallel;
        Printf.sprintf "%.2fx" (t_serial /. t_parallel);
        agree;
      ]
  in
  let chain_s, t_s = time (fun () -> Logit.Logit_dynamics.chain game ~beta) in
  let chain_p, t_p = time (fun () -> Logit.Logit_dynamics.chain ~pool game ~beta) in
  add "chain materialise (sparse rows)" t_s t_p
    (Experiments.Table.cell_bool (chain_equal chain_s chain_p));
  let curve_s, t_s =
    time (fun () -> Markov.Mixing.tv_curve chain_s pi ~starts ~steps)
  in
  let curve_p, t_p =
    time (fun () -> Markov.Mixing.tv_curve ~pool chain_s pi ~starts ~steps)
  in
  add
    (Printf.sprintf "tv_curve (all starts, %d steps)" steps)
    t_s t_p
    (Printf.sprintf "max|d| %.1e" (max_abs_diff curve_s curve_p));
  let tmix_s, t_s = time (fun () -> Markov.Mixing.mixing_time_all chain_s pi) in
  let tmix_p, t_p =
    time (fun () -> Markov.Mixing.mixing_time_all ~pool chain_s pi)
  in
  add "mixing_time_all" t_s t_p (Experiments.Table.cell_bool (tmix_s = tmix_p));
  let emp_s, t_s =
    time (fun () ->
        Markov.Mixing.empirical_tv (Prob.Rng.create 11) chain_s pi ~start:0
          ~steps:100 ~replicas)
  in
  let emp_p, t_p =
    time (fun () ->
        Markov.Mixing.empirical_tv ~pool (Prob.Rng.create 11) chain_s pi ~start:0
          ~steps:100 ~replicas)
  in
  add
    (Printf.sprintf "empirical_tv (%d replicas)" replicas)
    t_s t_p
    (Experiments.Table.cell_bool (emp_s = emp_p));
  let small = Games.Graphical.to_game small_desc in
  let cftp_s, t_s =
    time (fun () ->
        Logit.Perfect_sampling.samples (Prob.Rng.create 12) small ~beta
          ~count:cftp_count)
  in
  let cftp_p, t_p =
    time (fun () ->
        Logit.Perfect_sampling.samples ~pool (Prob.Rng.create 12) small ~beta
          ~count:cftp_count)
  in
  add
    (Printf.sprintf "CFTP samples (%d draws)" cftp_count)
    t_s t_p
    (Experiments.Table.cell_bool (cftp_s = cftp_p));
  Experiments.Table.add_note table
    "parallel runs reuse one pool; agreement is checked on the actual outputs.";
  Experiments.Table.print table

(* --- Phase 1.6: CSR storage ablation ----------------------------------- *)

(* The pre-CSR chain representation and kernels, reconstructed over the
   public row views: boxed (int * float) tuple rows, a fresh vector
   allocated per evolve, linear-scan sampling. This is the "before" arm
   of the ablation; the CSR library kernels are the "after" arm. *)
module Baseline = struct
  type t = { size : int; rows : (int * float) array array }

  let of_chain c =
    {
      size = Markov.Chain.size c;
      rows = Array.init (Markov.Chain.size c) (Markov.Chain.row c);
    }

  let evolve t mu =
    let out = Array.make t.size 0. in
    for i = 0 to t.size - 1 do
      let mass = mu.(i) in
      if mass > 0. then
        Array.iter (fun (j, p) -> out.(j) <- out.(j) +. (mass *. p)) t.rows.(i)
    done;
    out

  let sample_step rng t i =
    let entries = t.rows.(i) in
    let u = Prob.Rng.float rng in
    let acc = ref 0. in
    let result = ref (fst entries.(Array.length entries - 1)) in
    let found = ref false in
    Array.iter
      (fun (j, p) ->
        if not !found then begin
          acc := !acc +. p;
          if u < !acc then begin
            result := j;
            found := true
          end
        end)
      entries;
    !result

  let tv_against pi mu =
    let acc = ref 0. in
    Array.iteri (fun i x -> acc := !acc +. Float.abs (x -. pi.(i))) mu;
    0.5 *. !acc

  let point_mass n i =
    let v = Array.make n 0. in
    v.(i) <- 1.;
    v

  let tv_curve t pi ~steps =
    let n = t.size in
    let mus = Array.init n (point_mass n) in
    let tvs = Array.map (tv_against pi) mus in
    let worst () = Array.fold_left Float.max 0. tvs in
    let curve = Array.make (steps + 1) 0. in
    curve.(0) <- worst ();
    for step = 1 to steps do
      Array.iteri
        (fun k mu ->
          mus.(k) <- evolve t mu;
          tvs.(k) <- tv_against pi mus.(k))
        mus;
      curve.(step) <- worst ()
    done;
    curve

  let mixing_time_all ?(eps = 0.25) ?(max_steps = 1_000_000) t pi =
    let n = t.size in
    let mus = Array.init n (point_mass n) in
    let tvs = Array.map (tv_against pi) mus in
    let worst () = Array.fold_left Float.max 0. tvs in
    let rec go step =
      if worst () <= eps then Some step
      else if step >= max_steps then None
      else begin
        Array.iteri
          (fun k mu ->
            mus.(k) <- evolve t mu;
            tvs.(k) <- tv_against pi mus.(k))
          mus;
        go (step + 1)
      end
    in
    go 0

  let empirical_tv rng t pi ~start ~steps ~replicas =
    let streams = Prob.Rng.split_n rng replicas in
    let final = Array.make replicas start in
    for r = 0 to replicas - 1 do
      let rng = streams.(r) in
      let state = ref start in
      for _ = 1 to steps do
        state := sample_step rng t !state
      done;
      final.(r) <- !state
    done;
    let emp = Prob.Empirical.create t.size in
    Array.iter (Prob.Empirical.add emp) final;
    Prob.Empirical.tv_against emp (Prob.Dist.of_weights pi)
end

let run_csr_ablation () =
  let n_ring = if quick then 8 else 10 in
  let tv_steps = if quick then 50 else 150 in
  let emp_steps = if quick then 100 else 200 in
  let emp_replicas = if quick then 10_000 else 50_000 in
  let desc =
    Games.Graphical.create (Graphs.Generators.ring n_ring)
      (Games.Coordination.of_deltas ~delta0:1.0 ~delta1:1.0)
  in
  let game = Games.Graphical.to_game desc in
  let size = Games.Game.size game in
  let chain = Logit.Logit_dynamics.chain game ~beta in
  let baseline = Baseline.of_chain chain in
  let pi =
    Logit.Gibbs.stationary (Games.Game.space game)
      (Games.Graphical.potential desc)
      ~beta
  in
  (* Correctness gates first: the CSR kernels must reproduce the
     pre-CSR outputs bit-for-bit before any timing means anything. *)
  let evolve_identical =
    let r = Prob.Rng.create 7 in
    let ok = ref true in
    for _ = 1 to 5 do
      let mu = Array.init size (fun _ -> Prob.Rng.float r) in
      let total = Array.fold_left ( +. ) 0. mu in
      let mu = Array.map (fun x -> x /. total) mu in
      if Markov.Chain.evolve chain mu <> Baseline.evolve baseline mu then
        ok := false
    done;
    !ok
  in
  let starts = List.init size Fun.id in
  let curve_base, t_curve_base =
    time (fun () -> Baseline.tv_curve baseline pi ~steps:tv_steps)
  in
  let curve_csr, t_curve_csr =
    time (fun () -> Markov.Mixing.tv_curve chain pi ~starts ~steps:tv_steps)
  in
  let curve_identical = curve_base = curve_csr in
  let tmix_base, t_mix_base =
    time (fun () -> Baseline.mixing_time_all baseline pi)
  in
  let tmix_csr, t_mix_csr =
    time (fun () -> Markov.Mixing.mixing_time_all chain pi)
  in
  let emp_base, t_emp_base =
    time (fun () ->
        Baseline.empirical_tv (Prob.Rng.create 11) baseline pi ~start:0
          ~steps:emp_steps ~replicas:emp_replicas)
  in
  let emp_csr, t_emp_csr =
    time (fun () ->
        Markov.Mixing.empirical_tv (Prob.Rng.create 11) chain pi ~start:0
          ~steps:emp_steps ~replicas:emp_replicas)
  in
  let table =
    Experiments.Table.create
      ~title:
        (Printf.sprintf
           "CSR ablation: boxed rows + linear scan vs flat CSR (ring n=%d, \
            |S|=%d, beta=%g)"
           n_ring size beta)
      [
        ("workload", Experiments.Table.Left);
        ("pre-CSR s", Experiments.Table.Right);
        ("CSR s", Experiments.Table.Right);
        ("speedup", Experiments.Table.Right);
        ("agree", Experiments.Table.Right);
      ]
  in
  let add name t_base t_csr agree =
    Experiments.Table.add_row table
      [
        name;
        Printf.sprintf "%.3f" t_base;
        Printf.sprintf "%.3f" t_csr;
        Printf.sprintf "%.2fx" (t_base /. t_csr);
        Experiments.Table.cell_bool agree;
      ]
  in
  add
    (Printf.sprintf "tv_curve (all starts, %d steps)" tv_steps)
    t_curve_base t_curve_csr curve_identical;
  add "mixing_time_all (evolve-dominated)" t_mix_base t_mix_csr
    (tmix_base = tmix_csr);
  add
    (Printf.sprintf "empirical_tv (%d replicas x %d steps)" emp_replicas
       emp_steps)
    t_emp_base t_emp_csr
    (emp_base = emp_csr);
  Experiments.Table.add_note table
    "agree = outputs bit-identical to the pre-CSR kernels (evolve checked on 5 \
     random vectors too).";
  Experiments.Table.print table;
  if not evolve_identical then
    Printf.printf "WARNING: CSR evolve diverged from the pre-CSR kernel!\n";
  let json_path = Filename.concat (Sys.getcwd ()) Bench.Sink.csr_path in
  let json =
    Printf.sprintf
      {|{
  "bench": "csr_ablation",
  "quick": %b,
  "game": { "kind": "ring_coordination", "n": %d, "states": %d, "beta": %g },
  "evolve_bit_identical": %b,
  "workloads": [
    { "name": "tv_curve", "kind": "evolve", "steps": %d,
      "pre_csr_s": %.6f, "csr_s": %.6f, "speedup": %.3f, "agree": %b },
    { "name": "mixing_time_all", "kind": "evolve", "t_mix": %s,
      "pre_csr_s": %.6f, "csr_s": %.6f, "speedup": %.3f, "agree": %b },
    { "name": "empirical_tv", "kind": "sample_step", "steps": %d, "replicas": %d,
      "pre_csr_s": %.6f, "csr_s": %.6f, "speedup": %.3f, "agree": %b }
  ]
}
|}
      quick n_ring size beta evolve_identical tv_steps t_curve_base t_curve_csr
      (t_curve_base /. t_curve_csr)
      curve_identical
      (match tmix_csr with Some t -> string_of_int t | None -> "null")
      t_mix_base t_mix_csr
      (t_mix_base /. t_mix_csr)
      (tmix_base = tmix_csr)
      emp_steps emp_replicas t_emp_base t_emp_csr
      (t_emp_base /. t_emp_csr)
      (emp_base = emp_csr)
  in
  record_snapshot ~label:"CSR ablation" ~legacy_path:json_path json

(* --- Phase 1.8: push vs pull vs SpMM kernel ablation -------------------- *)

(* The PR 2 shape of the all-starts mixing workload: one float array per
   start, advanced by the serial push kernel [Chain.evolve_into], TV
   re-measured per start per step. This is the "before" arm; the pull
   and SpMM kernels must reproduce its outputs bit-for-bit. *)
module Push_mixing = struct
  let tv_against pi mu =
    let acc = ref 0. in
    Array.iteri (fun i x -> acc := !acc +. Float.abs (x -. pi.(i))) mu;
    0.5 *. !acc

  let point_mass n i =
    let v = Array.make n 0. in
    v.(i) <- 1.;
    v

  let worst tvs = Array.fold_left Float.max 0. tvs

  (* [advance] runs one synchronous step of every start; [kernel] is
     the per-start evolve, so the same driver times push (serial) and
     pull (pooled over starts) against identical state. *)
  let make_state chain pi =
    let n = Markov.Chain.size chain in
    let mus = ref (Array.init n (point_mass n)) in
    let scratch = ref (Array.init n (fun _ -> Array.make n 0.)) in
    let tvs = Array.map (tv_against pi) !mus in
    (mus, scratch, tvs)

  let mixing_time_all ?(eps = 0.25) ?(max_steps = 1_000_000) ~advance chain pi =
    let mus, scratch, tvs = make_state chain pi in
    let rec go step =
      if worst tvs <= eps then Some step
      else if step >= max_steps then None
      else begin
        advance !mus !scratch tvs;
        let previous = !mus in
        mus := !scratch;
        scratch := previous;
        go (step + 1)
      end
    in
    go 0

  let tv_curve ~advance chain pi ~steps =
    let mus, scratch, tvs = make_state chain pi in
    let curve = Array.make (steps + 1) 0. in
    curve.(0) <- worst tvs;
    for step = 1 to steps do
      advance !mus !scratch tvs;
      let previous = !mus in
      mus := !scratch;
      scratch := previous;
      curve.(step) <- worst tvs
    done;
    curve

  let push_advance chain pi mus scratch tvs =
    Array.iteri
      (fun s mu ->
        Markov.Chain.evolve_into chain ~src:mu ~dst:scratch.(s);
        tvs.(s) <- tv_against pi scratch.(s))
      mus
end

(* The pooled pull arm. The pull kernel's one-writer ownership makes
   every start's trajectory independent of the others, so instead of a
   synchronized step loop (a pool dispatch and a barrier per step) each
   start runs to its own eps-crossing inside one dispatch, double
   buffers hot in its domain's cache, and stops as soon as it has mixed
   rather than being dragged to the slowest start's horizon. TV to
   stationarity is non-increasing in t, so the max of the per-start
   crossing times is the synchronized mixing time; the caller gates the
   agreement bit-for-bit. *)
let pull_mixing_time_all ?(eps = 0.25) ?(max_steps = 1_000_000) pool chain pi =
  let n = Markov.Chain.size chain in
  let times = Array.make n 0 in
  let mixed = Array.make n true in
  Exec.Pool.parallel_for pool ~n (fun s ->
      let mu = ref (Array.make n 0.) in
      let scratch = ref (Array.make n 0.) in
      !mu.(s) <- 1.;
      let t = ref 0 in
      let tv = ref (Push_mixing.tv_against pi !mu) in
      while !tv > eps && !t < max_steps do
        Markov.Chain.evolve_pull_into chain ~src:!mu ~dst:!scratch;
        let previous = !mu in
        mu := !scratch;
        scratch := previous;
        incr t;
        tv := Push_mixing.tv_against pi !mu
      done;
      (* lint: allow domain-capture — times.(s) has exactly one writer, start s *)
      times.(s) <- !t;
      (* lint: allow domain-capture — mixed.(s) has exactly one writer, start s *)
      mixed.(s) <- !tv <= eps);
  if Array.for_all Fun.id mixed then Some (Array.fold_left Int.max 0 times)
  else None

let run_spmm_ablation () =
  let n_ring = if quick then 8 else 10 in
  let tv_steps = if quick then 50 else 150 in
  let desc =
    Games.Graphical.create (Graphs.Generators.ring n_ring)
      (Games.Coordination.of_deltas ~delta0:1.0 ~delta1:1.0)
  in
  let game = Games.Graphical.to_game desc in
  let size = Games.Game.size game in
  let chain = Logit.Logit_dynamics.chain game ~beta in
  let pi =
    Logit.Gibbs.stationary (Games.Game.space game)
      (Games.Graphical.potential desc)
      ~beta
  in
  (* Force the lazy CSC derivation once, outside all timed regions, so
     every pull/SpMM arm pays for kernels, not for the transpose. *)
  ignore (Markov.Chain.to_csc chain);
  Exec.Pool.with_pool ~domains:jobs @@ fun pool ->
  (* Correctness gate: the pull kernel must reproduce the push kernel
     bit-for-bit on random (sparse, unnormalised) vectors. *)
  let evolve_identical =
    let r = Prob.Rng.create 7 in
    let push = Array.make size 0. and pull = Array.make size 0. in
    let ok = ref true in
    for _ = 1 to 5 do
      let mu =
        Array.init size (fun _ ->
            if Prob.Rng.float r < 0.3 then 0. else Prob.Rng.float r)
      in
      Markov.Chain.evolve_into chain ~src:mu ~dst:push;
      Markov.Chain.evolve_pull_into chain ~src:mu ~dst:pull;
      if push <> pull then ok := false
    done;
    !ok
  in
  let tmix_push, t_push =
    time (fun () ->
        Push_mixing.mixing_time_all
          ~advance:(Push_mixing.push_advance chain pi)
          chain pi)
  in
  let tmix_pull, t_pull = time (fun () -> pull_mixing_time_all pool chain pi) in
  let tmix_spmm, t_spmm = time (fun () -> Markov.Mixing.mixing_time_all chain pi) in
  let tmix_spmm_pool, t_spmm_pool =
    time (fun () -> Markov.Mixing.mixing_time_all ~pool chain pi)
  in
  let starts = List.init size Fun.id in
  let curve_push, t_curve_push =
    time (fun () ->
        Push_mixing.tv_curve
          ~advance:(Push_mixing.push_advance chain pi)
          chain pi ~steps:tv_steps)
  in
  let curve_spmm, t_curve_spmm =
    time (fun () -> Markov.Mixing.tv_curve chain pi ~starts ~steps:tv_steps)
  in
  let (power_serial, t_power_serial), (power_pooled, t_power_pooled) =
    time_pair ~reps:100
      (fun () -> Markov.Stationary.by_power chain)
      (fun () -> Markov.Stationary.by_power ~pool chain)
  in
  let table =
    Experiments.Table.create
      ~title:
        (Printf.sprintf
           "SpMM ablation: serial push vs pooled pull vs blocked SpMM (ring \
            n=%d, |S|=%d, beta=%g, %d domains)"
           n_ring size beta jobs)
      [
        ("workload / arm", Experiments.Table.Left);
        ("seconds", Experiments.Table.Right);
        ("speedup", Experiments.Table.Right);
        ("agree", Experiments.Table.Right);
      ]
  in
  let add name seconds speedup agree =
    Experiments.Table.add_row table
      [
        name;
        Printf.sprintf "%.3f" seconds;
        Printf.sprintf "%.2fx" speedup;
        Experiments.Table.cell_bool agree;
      ]
  in
  add "mixing_time_all / serial push (PR 2 baseline)" t_push 1.0 true;
  add "mixing_time_all / pooled pull" t_pull (t_push /. t_pull)
    (tmix_pull = tmix_push);
  add "mixing_time_all / SpMM serial" t_spmm (t_push /. t_spmm)
    (tmix_spmm = tmix_push);
  add "mixing_time_all / SpMM pooled" t_spmm_pool (t_push /. t_spmm_pool)
    (tmix_spmm_pool = tmix_push);
  add
    (Printf.sprintf "tv_curve(%d) / serial push" tv_steps)
    t_curve_push 1.0 true;
  add
    (Printf.sprintf "tv_curve(%d) / SpMM" tv_steps)
    t_curve_spmm
    (t_curve_push /. t_curve_spmm)
    (curve_push = curve_spmm);
  add "by_power / serial push" t_power_serial 1.0 true;
  add "by_power / pooled pull" t_power_pooled (t_power_serial /. t_power_pooled)
    (power_serial = power_pooled);
  Experiments.Table.add_note table
    "agree = outputs bit-identical to the serial push arm (evolve also checked \
     push-vs-pull on 5 random vectors).";
  Experiments.Table.print table;
  if not evolve_identical then
    Printf.printf "WARNING: pull evolve diverged from the push kernel!\n";
  let json_path = Filename.concat (Sys.getcwd ()) Bench.Sink.spmm_path in
  let tmix_str =
    match tmix_push with Some t -> string_of_int t | None -> "null"
  in
  let json =
    Printf.sprintf
      {|{
  "bench": "spmm_ablation",
  "quick": %b,
  "jobs": %d,
  "game": { "kind": "ring_coordination", "n": %d, "states": %d, "beta": %g },
  "evolve_bit_identical": %b,
  "t_mix": %s,
  "workloads": [
    { "name": "mixing_time_all", "arm": "serial_push", "seconds": %.6f,
      "speedup": 1.0, "bit_identical": true },
    { "name": "mixing_time_all", "arm": "pooled_pull", "seconds": %.6f,
      "speedup": %.3f, "bit_identical": %b },
    { "name": "mixing_time_all", "arm": "spmm_serial", "seconds": %.6f,
      "speedup": %.3f, "bit_identical": %b },
    { "name": "mixing_time_all", "arm": "spmm_pooled", "seconds": %.6f,
      "speedup": %.3f, "bit_identical": %b }
  ],
  "tv_curve": { "steps": %d, "push_s": %.6f, "spmm_s": %.6f, "speedup": %.3f,
    "bit_identical": %b },
  "by_power": { "serial_s": %.6f, "pooled_s": %.6f, "speedup": %.3f,
    "bit_identical": %b }
}
|}
      quick jobs n_ring size beta evolve_identical tmix_str t_push t_pull
      (t_push /. t_pull)
      (tmix_pull = tmix_push)
      t_spmm
      (t_push /. t_spmm)
      (tmix_spmm = tmix_push)
      t_spmm_pool
      (t_push /. t_spmm_pool)
      (tmix_spmm_pool = tmix_push)
      tv_steps t_curve_push t_curve_spmm
      (t_curve_push /. t_curve_spmm)
      (curve_push = curve_spmm)
      t_power_serial t_power_pooled
      (t_power_serial /. t_power_pooled)
      (power_serial = power_pooled)
  in
  record_snapshot ~label:"SpMM ablation" ~legacy_path:json_path json

(* --- Phase 1.7: artifact store ablation -------------------------------- *)

let run_store_ablation () =
  let n_ring = if quick then 8 else 10 in
  let tv_steps = if quick then 50 else 150 in
  let root =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "logitdyn-bench-store-%d" (Unix.getpid ()))
  in
  let cas = Store.Cas.open_ ~dir:root () in
  ignore (Store.Cas.clear cas);
  let desc =
    Games.Graphical.create (Graphs.Generators.ring n_ring)
      (Games.Coordination.of_deltas ~delta0:1.0 ~delta1:1.0)
  in
  let game = Games.Graphical.to_game desc in
  let size = Games.Game.size game in
  let phi = Games.Graphical.potential desc in
  let starts = List.init size Fun.id in
  (* One "run" of the `logitdyn mixing` artifact pipeline: chain,
     stationary law and TV curve, each built through the store. *)
  let chain_key =
    Markov.Chain_codec.recipe ~game:"bench-ring" ~size ~beta
      ~variant:"sequential-logit"
      ~extra:[ ("n", string_of_int n_ring) ]
      ()
  in
  let dist_key =
    Store.Key.v ~kind:"dist"
      [
        ("game", "bench-ring");
        ("n", string_of_int n_ring);
        ("beta", Store.Key.float_field beta);
        ("role", "stationary");
      ]
  in
  let curve_key =
    Store.Key.v ~kind:"curve"
      [
        ("game", "bench-ring");
        ("n", string_of_int n_ring);
        ("beta", Store.Key.float_field beta);
        ("steps", string_of_int tv_steps);
      ]
  in
  let through key encode decode build =
    match Store.Cas.get_decoded cas key ~decode with
    | Some v -> v
    | None ->
        let v = build () in
        Store.Cas.put cas key (encode v);
        v
  in
  let run_once () =
    let chain =
      Markov.Chain_codec.cached ~store:cas chain_key (fun () ->
          Logit.Logit_dynamics.chain game ~beta)
    in
    let pi =
      through dist_key Store.Codec.encode_dist Store.Codec.decode_dist
        (fun () -> Logit.Gibbs.stationary (Games.Game.space game) phi ~beta)
    in
    let curve =
      through curve_key Store.Codec.encode_curve Store.Codec.decode_curve
        (fun () -> Markov.Mixing.tv_curve chain pi ~starts ~steps:tv_steps)
    in
    (chain, pi, curve)
  in
  let (chain_cold, pi_cold, curve_cold), t_cold = time run_once in
  let cold = Store.Cas.stats cas in
  let (chain_warm, pi_warm, curve_warm), t_warm = time run_once in
  let warm = Store.Cas.stats cas in
  let warm_hits = warm.Store.Cas.hits - cold.Store.Cas.hits in
  let chain_identical = chain_equal chain_cold chain_warm in
  let pi_identical = pi_cold = pi_warm in
  let curve_identical = curve_cold = curve_warm in
  (* Resume a sweep killed mid-grid: file the first 5 of 12 points by
     hand (the "interrupted run"), then let Sweep.map_cached finish. *)
  let grid = List.init 12 Fun.id in
  let point_key i =
    Store.Key.v ~kind:"bench-point" [ ("i", string_of_int i) ]
  in
  let encode_point x = Store.Codec.encode_dist [| x |] in
  let decode_point s = Result.map (fun a -> a.(0)) (Store.Codec.decode_dist s) in
  let computed = ref 0 in
  let f i =
    incr computed;
    float_of_int (i * i)
  in
  List.iter
    (fun i -> if i < 5 then Store.Cas.put cas (point_key i) (encode_point (f i)))
    grid;
  let before_resume = !computed in
  let results =
    Experiments.Sweep.map_cached ~store:cas ~key:point_key ~encode:encode_point
      ~decode:decode_point f grid
  in
  let recomputed = !computed - before_resume in
  let resume_ok =
    recomputed = 7 && results = List.map (fun i -> float_of_int (i * i)) grid
  in
  let table =
    Experiments.Table.create
      ~title:
        (Printf.sprintf
           "store ablation: cold vs warm artifact pipeline (ring n=%d, |S|=%d, \
            beta=%g)"
           n_ring size beta)
      [
        ("workload", Experiments.Table.Left);
        ("cold s", Experiments.Table.Right);
        ("warm s", Experiments.Table.Right);
        ("speedup", Experiments.Table.Right);
        ("agree", Experiments.Table.Right);
      ]
  in
  Experiments.Table.add_row table
    [
      Printf.sprintf "chain + stationary + tv_curve(%d)" tv_steps;
      Printf.sprintf "%.3f" t_cold;
      Printf.sprintf "%.3f" t_warm;
      Printf.sprintf "%.1fx" (t_cold /. t_warm);
      Experiments.Table.cell_bool
        (chain_identical && pi_identical && curve_identical);
    ];
  Experiments.Table.add_row table
    [
      "sweep resume (12 points, 5 pre-filed)";
      "-";
      "-";
      Printf.sprintf "%d recomputed" recomputed;
      Experiments.Table.cell_bool resume_ok;
    ];
  Experiments.Table.add_note table
    (Printf.sprintf
       "cold: %d miss(es), %d write(s); warm: %d hit(s). agree = decoded \
        artifacts bit-identical to the computed ones."
       cold.Store.Cas.misses cold.Store.Cas.writes warm_hits);
  Experiments.Table.print table;
  let json_path = Filename.concat (Sys.getcwd ()) Bench.Sink.store_path in
  let json =
    Printf.sprintf
      {|{
  "bench": "store_ablation",
  "quick": %b,
  "game": { "kind": "ring_coordination", "n": %d, "states": %d, "beta": %g },
  "pipeline": { "cold_s": %.6f, "warm_s": %.6f, "speedup": %.3f,
    "cold_misses": %d, "cold_writes": %d, "warm_hits": %d },
  "identical": { "chain": %b, "stationary": %b, "tv_curve": %b },
  "resume": { "grid": 12, "prefiled": 5, "recomputed": %d, "ok": %b }
}
|}
      quick n_ring size beta t_cold t_warm (t_cold /. t_warm)
      cold.Store.Cas.misses cold.Store.Cas.writes warm_hits chain_identical
      pi_identical curve_identical recomputed resume_ok
  in
  record_snapshot ~label:"store ablation" ~legacy_path:json_path json;
  ignore (Store.Cas.clear cas)

(* --- Phase 1.9: daemon load bench ------------------------------------ *)

let run_serve_ablation () =
  let module SP = Serve.Protocol in
  let n_ring = if quick then 8 else 10 in
  let beta = 1.0 in
  let clients = 8 in
  (* Distinct eps per client: the eight requests coalesce into ONE
     panel sweep but settle at different steps, so the bit-identity
     gate compares genuinely different answers, not 8 copies of one. *)
  let epss = [ 0.3; 0.25; 0.2; 0.15; 0.12; 0.1; 0.08; 0.05 ] in
  assert (List.length epss = clients);
  let mixing_q ~n eps =
    SP.Mixing { game = "ring"; n; beta; eps; replicas = 0; seed = 1 }
  in
  let socket_path =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "logitdyn-bench-%d.sock" (Unix.getpid ()))
  in
  (* spectral_cutoff 0 forces the panel route on both arms: this phase
     times the coalescing scheduler, not the eigensolver. *)
  let server_engine = Serve.Engine.create ~spectral_cutoff:0 () in
  let server = Serve.Server.create ~engine:server_engine ~socket_path () in
  let server_domain =
    Domain.spawn (fun () -> Serve.Server.serve_forever server)
  in
  Fun.protect
    ~finally:(fun () ->
      Serve.Server.stop server;
      Domain.join server_domain)
  @@ fun () ->
  let serial_engine = Serve.Engine.create ~spectral_cutoff:0 () in
  let size =
    match Serve.Engine.entry serial_engine ~game:"ring" ~n:n_ring ~beta with
    | Ok e -> Games.Game.size e.Serve.Engine.game
    | Error msg -> failwith msg
  in
  (* Warm the daemon's chain untimed so both arms time sweeps only. *)
  (match Serve.Client.query ~socket_path (mixing_q ~n:n_ring 0.45) with
  | Ok (Ok _) -> ()
  | Ok (Error _) | Error _ -> failwith "daemon warm-up query failed");
  let serial_replies, serial_s =
    time (fun () ->
        List.map
          (fun eps -> Serve.Engine.eval serial_engine (mixing_q ~n:n_ring eps))
          epss)
  in
  let conns =
    List.map
      (fun _ ->
        match Serve.Client.connect ~socket_path with
        | Ok c -> c
        | Error msg -> failwith msg)
      epss
  in
  let daemon_replies, coalesced_s =
    time (fun () ->
        List.iter2
          (fun c eps ->
            match
              Serve.Client.send c
                { SP.id = 1; deadline_ms = None; query = mixing_q ~n:n_ring eps }
            with
            | Ok () -> ()
            | Error msg -> failwith msg)
          conns epss;
        List.map
          (fun c ->
            match Serve.Client.recv c with
            | Ok resp -> resp.SP.result
            | Error msg -> failwith msg)
          conns)
  in
  List.iter Serve.Client.close conns;
  let bit_identical = daemon_replies = serial_replies in
  let stats () =
    match Serve.Client.query ~socket_path SP.Stats with
    | Ok (Ok (SP.Stats_r s)) -> s
    | Ok _ | Error _ -> failwith "daemon stats query failed"
  in
  let co_stats = stats () in
  (* Open loop: offer requests at a fixed rate from a pacing domain,
     regardless of completions, and time each response on the main
     domain — queueing delay under load is part of the latency. *)
  let requests = if quick then 120 else 300 in
  let offered_rps = 200. in
  let open_q = mixing_q ~n:6 0.25 in
  (match Serve.Client.query ~socket_path open_q with
  | Ok (Ok _) -> ()
  | Ok (Error _) | Error _ -> failwith "open-loop warm-up query failed");
  let c =
    match Serve.Client.connect ~socket_path with
    | Ok c -> c
    | Error msg -> failwith msg
  in
  let send_ns = Array.make (requests + 1) 0L in
  let recv_ns = Array.make (requests + 1) 0L in
  let failures = ref 0 in
  let sender =
    Domain.spawn (fun () ->
        let interval_ns = Int64.of_float (1e9 /. offered_rps) in
        let start = Common.Clock.monotonic_ns () in
        for i = 1 to requests do
          let due =
            Int64.add start (Int64.mul interval_ns (Int64.of_int (i - 1)))
          in
          let rec wait () =
            let remain =
              Int64.to_float (Int64.sub due (Common.Clock.monotonic_ns ()))
              /. 1e9
            in
            if remain > 0. then begin
              if remain > 0.001 then Unix.sleepf (remain -. 0.0005);
              wait ()
            end
          in
          wait ();
          send_ns.(i) <- Common.Clock.monotonic_ns ();
          match
            Serve.Client.send c { SP.id = i; deadline_ms = None; query = open_q }
          with
          | Ok () -> ()
          | Error msg -> failwith msg
        done)
  in
  for _ = 1 to requests do
    match Serve.Client.recv c with
    | Ok resp ->
        recv_ns.(resp.SP.req_id) <- Common.Clock.monotonic_ns ();
        (match resp.SP.result with Ok _ -> () | Error _ -> incr failures)
    | Error msg -> failwith msg
  done;
  Domain.join sender;
  Serve.Client.close c;
  let lat_ms =
    Array.init requests (fun k ->
        Int64.to_float (Int64.sub recv_ns.(k + 1) send_ns.(k + 1)) /. 1e6)
  in
  Array.sort compare lat_ms;
  let percentile q =
    lat_ms.(Int.min (requests - 1)
              (int_of_float (Float.round (q *. float_of_int (requests - 1)))))
  in
  let p50 = percentile 0.50 and p99 = percentile 0.99 in
  let last_recv = Array.fold_left Int64.max 0L recv_ns in
  let elapsed_s = Int64.to_float (Int64.sub last_recv send_ns.(1)) /. 1e9 in
  let achieved_rps = float_of_int requests /. elapsed_s in
  let table =
    Experiments.Table.create
      ~title:
        (Printf.sprintf
           "daemon ablation: coalesced panel scheduler (ring n=%d, |S|=%d, \
            beta=%g)"
           n_ring size beta)
      [
        ("workload", Experiments.Table.Left);
        ("serial s", Experiments.Table.Right);
        ("daemon s", Experiments.Table.Right);
        ("speedup", Experiments.Table.Right);
        ("agree", Experiments.Table.Right);
      ]
  in
  Experiments.Table.add_row table
    [
      Printf.sprintf "mixing x%d (distinct eps)" clients;
      Printf.sprintf "%.3f" serial_s;
      Printf.sprintf "%.3f" coalesced_s;
      Printf.sprintf "%.1fx" (serial_s /. coalesced_s);
      Experiments.Table.cell_bool bit_identical;
    ];
  Experiments.Table.add_row table
    [
      Printf.sprintf "open loop (%d req @ %.0f rps)" requests offered_rps;
      "-";
      Printf.sprintf "p50 %.2fms p99 %.2fms" p50 p99;
      Printf.sprintf "%.0f rps" achieved_rps;
      Experiments.Table.cell_bool (!failures = 0);
    ];
  Experiments.Table.add_note table
    (Printf.sprintf
       "coalescing: %d batch(es), widest %d, %d panel step(s). agree = \
        daemon replies bit-identical to serial engine evals."
       co_stats.SP.batches co_stats.SP.max_batch co_stats.SP.panel_steps);
  Experiments.Table.print table;
  let json_path = Filename.concat (Sys.getcwd ()) Bench.Sink.serve_path in
  let json =
    Printf.sprintf
      {|{
  "bench": "serve_ablation",
  "quick": %b,
  "game": { "kind": "ring_coordination", "n": %d, "states": %d, "beta": %g },
  "coalescing": { "clients": %d, "serial_s": %.6f, "coalesced_s": %.6f,
    "speedup": %.3f, "batches": %d, "max_batch": %d, "panel_steps": %d,
    "bit_identical": %b },
  "open_loop": { "requests": %d, "offered_rps": %.1f, "achieved_rps": %.1f,
    "p50_ms": %.3f, "p99_ms": %.3f, "errors": %d }
}
|}
      quick n_ring size beta clients serial_s coalesced_s
      (serial_s /. coalesced_s)
      co_stats.SP.batches co_stats.SP.max_batch co_stats.SP.panel_steps
      bit_identical requests offered_rps achieved_rps p50 p99 !failures
  in
  record_snapshot ~label:"daemon ablation" ~legacy_path:json_path json

(* --- Phase 1.10: out-of-core segment ablation --------------------------- *)

(* The lazy cycle walk: three entries per row, uniform stationary law
   (doubly stochastic), and a state count limited by nothing but disk
   — the full profile packs 10^7 states and streams them back block
   by block. *)
let cycle_row n i =
  [ ((i + n - 1) mod n, 0.25); (i, 0.5); ((i + 1) mod n, 0.25) ]

let run_ooc_ablation () =
  let n = if quick then 1 lsl 14 else 10_000_000 in
  let steps = if quick then 50 else 12 in
  let block_nnz = if quick then 1 lsl 12 else Ooc.Segment.default_block_nnz in
  let seg_path =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "logitdyn-bench-ooc-%d.seg" (Unix.getpid ()))
  in
  let with_pool_opt j f =
    if j <= 1 then f None
    else Exec.Pool.with_pool ~domains:j (fun p -> f (Some p))
  in
  let rm path = try Sys.remove path with Sys_error _ -> () in
  (* Equivalence gate 1: on an overlap size where the in-RAM SpMM arm
     is comfortable, the out-of-core TV sweep must be bit-identical
     across access modes and pool sizes 1/2/4. Tiny blocks force
     column ranges to straddle block boundaries. *)
  let overlap_ok =
    let n' = 1 lsl 12 in
    let chain = Markov.Chain.of_function n' (cycle_row n') in
    let pi = Array.make n' (1. /. float_of_int n') in
    let starts = [ 0; 1; (n' / 2); n' - 1 ] in
    let path = seg_path ^ ".overlap" in
    let _ =
      Ooc.Segment.pack ~block_nnz:(1 lsl 9) ~path ~size:n' ~row:(cycle_row n') ()
    in
    Fun.protect ~finally:(fun () -> rm path) @@ fun () ->
    let reference = Markov.Mixing.tv_curve chain pi ~starts ~steps:30 in
    List.for_all
      (fun access ->
        match Ooc.Segmented_chain.open_ ~access path with
        | Error msg -> failwith msg
        | Ok sc ->
            Fun.protect ~finally:(fun () -> Ooc.Segmented_chain.close sc)
            @@ fun () ->
            let kernel = Ooc.Segmented_chain.kernel sc in
            List.for_all
              (fun j ->
                with_pool_opt j @@ fun pool ->
                Markov.Mixing.tv_curve_kernel ?pool kernel pi ~starts ~steps:30
                = reference)
              [ 1; 2; 4 ])
      [ Ooc.Segment.Mmap; Ooc.Segment.Stream ]
  in
  (* Equivalence gate 2: the fixed-point workloads (π by power
     iteration, t_mix to full convergence) on a size where running
     them to the end is cheap — the kernel path must land on the very
     same iterates. *)
  let fixpoint_ok =
    let n' = 128 in
    let chain = Markov.Chain.of_function n' (cycle_row n') in
    let pi = Array.make n' (1. /. float_of_int n') in
    let path = seg_path ^ ".fix" in
    let _ =
      Ooc.Segment.pack ~block_nnz:24 ~path ~size:n' ~row:(cycle_row n') ()
    in
    Fun.protect ~finally:(fun () -> rm path) @@ fun () ->
    match Ooc.Segmented_chain.open_ path with
    | Error msg -> failwith msg
    | Ok sc ->
        Fun.protect ~finally:(fun () -> Ooc.Segmented_chain.close sc)
        @@ fun () ->
        let kernel = Ooc.Segmented_chain.kernel sc in
        let power_ok =
          Markov.Stationary.by_power_kernel kernel
          = Markov.Stationary.by_power chain
        in
        let mix_ref = Markov.Mixing.mixing_time chain pi ~starts:[ 0 ] in
        let mix_ok =
          List.for_all
            (fun j ->
              with_pool_opt j @@ fun pool ->
              Markov.Mixing.mixing_time_kernel ?pool kernel pi ~starts:[ 0 ]
              = mix_ref)
            [ 1; 4 ]
        in
        power_ok && mix_ok
  in
  (* Full-size arms: pack once, then the same TV sweep through each
     access mode. The stream arm runs first so its RSS sample does not
     share the address space with a still-mapped copy of the file. *)
  let info, t_pack =
    time (fun () ->
        Ooc.Segment.pack ~block_nnz ~path:seg_path ~size:n ~row:(cycle_row n) ())
  in
  Fun.protect ~finally:(fun () -> rm seg_path) @@ fun () ->
  let pi = Array.make n (1. /. float_of_int n) in
  let starts = [ 0 ] in
  let run_arm ~access ~pool_jobs =
    match Ooc.Segmented_chain.open_ ~access seg_path with
    | Error msg -> failwith msg
    | Ok sc ->
        Fun.protect ~finally:(fun () -> Ooc.Segmented_chain.close sc)
        @@ fun () ->
        let kernel = Ooc.Segmented_chain.kernel sc in
        with_pool_opt pool_jobs @@ fun pool ->
        (* Compact, then reset the VmHWM watermark, so the sample is
           this arm's own peak, not a leftover from pack or an
           earlier arm. *)
        Gc.compact ();
        ignore (Common.Rss.reset_peak () : bool);
        let curve, t =
          time (fun () ->
              Markov.Mixing.tv_curve_kernel ?pool kernel pi ~starts ~steps)
        in
        (curve, t, Common.Rss.peak_kb ())
  in
  let curve_stream, t_stream, rss_stream =
    run_arm ~access:Ooc.Segment.Stream ~pool_jobs:1
  in
  let curve_mmap, t_mmap, rss_mmap =
    run_arm ~access:Ooc.Segment.Mmap ~pool_jobs:1
  in
  let curve_pool, t_pool, _ = run_arm ~access:Ooc.Segment.Mmap ~pool_jobs:jobs in
  let arms_agree = curve_stream = curve_mmap && curve_pool = curve_mmap in
  let equivalent = overlap_ok && fixpoint_ok && arms_agree in
  let pp_rss = function
    | Some kb -> Printf.sprintf "%d kB" kb
    | None -> "n/a"
  in
  let table =
    Experiments.Table.create
      ~title:
        (Printf.sprintf
           "out-of-core ablation: segmented vs in-RAM kernels (cycle walk, \
            |S|=%d, nnz=%d, %d blocks, %d domains)"
           info.Ooc.Segment.b_n info.Ooc.Segment.b_nnz info.Ooc.Segment.b_blocks
           jobs)
      [
        ("workload / arm", Experiments.Table.Left);
        ("seconds", Experiments.Table.Right);
        ("speedup", Experiments.Table.Right);
        ("peak RSS", Experiments.Table.Right);
        ("agree", Experiments.Table.Right);
      ]
  in
  let add name seconds speedup rss agree =
    Experiments.Table.add_row table
      [
        name;
        Printf.sprintf "%.3f" seconds;
        Printf.sprintf "%.2fx" speedup;
        rss;
        Experiments.Table.cell_bool agree;
      ]
  in
  add "pack / two-pass stream build" t_pack 1.0 "-" true;
  add
    (Printf.sprintf "tv_curve(%d) / mmap serial" steps)
    t_mmap 1.0 (pp_rss rss_mmap) arms_agree;
  add
    (Printf.sprintf "tv_curve(%d) / mmap pooled" steps)
    t_pool (t_mmap /. t_pool) "-" arms_agree;
  add
    (Printf.sprintf "tv_curve(%d) / stream serial" steps)
    t_stream (t_mmap /. t_stream) (pp_rss rss_stream) arms_agree;
  Experiments.Table.add_note table
    (Printf.sprintf
       "segment file: %d bytes on disk. agree = all arms bit-identical; \
        overlap equivalence vs in-RAM SpMM (pools 1/2/4, mmap+stream): %s; \
        fixed-point equivalence (by_power, mixing_time): %s."
       info.Ooc.Segment.b_bytes
       (if overlap_ok then "yes" else "NO")
       (if fixpoint_ok then "yes" else "NO"));
  Experiments.Table.print table;
  let json_path = Filename.concat (Sys.getcwd ()) Bench.Sink.ooc_path in
  let rss_json = function
    | Some kb -> string_of_int kb
    | None -> "null"
  in
  let json =
    Printf.sprintf
      {|{
  "bench": "ooc_ablation",
  "quick": %b,
  "jobs": %d,
  "chain": { "kind": "lazy_cycle_walk", "states": %d, "nnz": %d,
    "blocks": %d, "file_bytes": %d },
  "equivalent": %b,
  "workloads": [
    { "name": "pack", "arm": "stream_build", "seconds": %.6f,
      "speedup": 1.0, "jobs": 1 },
    { "name": "tv_curve", "arm": "mmap_serial", "seconds": %.6f,
      "speedup": 1.0, "jobs": 1, "peak_rss_kb": %s },
    { "name": "tv_curve", "arm": "mmap_pooled", "seconds": %.6f,
      "speedup": %.3f, "jobs": %d },
    { "name": "tv_curve", "arm": "stream_serial", "seconds": %.6f,
      "speedup": %.3f, "jobs": 1, "peak_rss_kb": %s }
  ]
}
|}
      quick jobs info.Ooc.Segment.b_n info.Ooc.Segment.b_nnz
      info.Ooc.Segment.b_blocks info.Ooc.Segment.b_bytes equivalent t_pack
      t_mmap (rss_json rss_mmap) t_pool (t_mmap /. t_pool) jobs t_stream
      (t_mmap /. t_stream) (rss_json rss_stream)
  in
  record_snapshot ~label:"out-of-core ablation" ~legacy_path:json_path json

(* --- Phase 1.11: β-family ablation ------------------------------------- *)

(* β-grids are the repo's dominant workload shape, so this phase races
   the family layer against the per-point paths it replaces: (a) cold
   grid build — one chain_family (utilities tabulated once, shared
   structure) vs an independent chain per β; (b) multi-β panel
   advancement — the fused shared-structure SpMM vs per-plane
   evolve_many_into; (c) the structure-once family store layout, cold
   vs warm. Every arm is gated on bit-identity against its per-β
   counterpart; timings land in BENCH_family.json. *)
let run_family_ablation () =
  (* The paper's Section 5 clique coordination game: every player's
     utility sums over n-1 neighbours, so the per-state utility
     tabulation the family shares across the grid is a real fraction
     of the build — the regime β-families exist for. *)
  let n_players = if quick then 8 else 10 in
  let grid_points = if quick then 8 else 12 in
  let betas =
    List.init grid_points (fun i -> 0.05 +. (0.05 *. float_of_int i))
  in
  let sweep_steps = if quick then 200 else 400 in
  let desc =
    Games.Graphical.create (Graphs.Generators.clique n_players)
      (Games.Coordination.of_deltas ~delta0:1.0 ~delta1:1.0)
  in
  let space = Games.Graphical.space desc in
  let phi = Games.Graphical.potential desc in
  (* Deliberately NOT [Graphical.to_game]: that tabulates every utility
     into a per-player table for spaces ≤ 2^22, which already amortises
     utility evaluation across the grid at game level. β-families exist
     for the regime where that table is unaffordable (large spaces,
     out-of-core sweeps) — modelled here by keeping the utility a real
     neighbour-sum computation, so per-point rebuilds pay it at every β
     while [chain_family] tabulates it once. The floats are the same
     either way, so the bit-identity gates are unaffected. *)
  let graph = Games.Graphical.graph desc in
  let basic = Games.Graphical.basic desc in
  let game =
    Games.Game.create
      ~name:(Printf.sprintf "clique-coordination-untabulated(n=%d)" n_players)
      space
      (fun player idx ->
        let mine = Games.Strategy_space.player_strategy space idx player in
        List.fold_left
          (fun acc v ->
            acc
            +. Games.Coordination.payoff basic mine
                 (Games.Strategy_space.player_strategy space idx v))
          0.
          (Graphs.Graph.neighbors graph player))
  in
  let size = Games.Game.size game in
  Exec.Pool.with_pool ~domains:jobs @@ fun pool ->
  (* (a) Cold β-grid build: P independent chain builds vs one family. *)
  let (per_point, t_per_point), (family, t_family) =
    time_pair
      ~reps:(if quick then 25 else 9)
      (fun () -> List.map (fun beta -> Logit.Logit_dynamics.chain ~pool game ~beta) betas)
      (fun () -> Logit.Logit_dynamics.chain_family ~pool game ~betas)
  in
  let build_identical =
    List.for_all Fun.id
      (List.mapi
         (fun i c -> chain_equal c (Markov.Family.plane family i))
         per_point)
  in
  (* (headline) Cold β-grid sweep — the workload [mixing --betas] and
     E2 actually run: build every grid point's chain and settle its
     mixing time from the extremal (consensus) starts. The per-point
     arm rebuilds from the game at each β; the family arm tabulates
     utilities once and settles the whole grid in one fused panel
     sweep. *)
  let mix_starts = [ 0; size - 1 ] in
  let mix_eps = 0.25 in
  let mix_max_steps = 50_000 in
  let sweep_per_point () =
    List.map
      (fun beta ->
        let chain = Logit.Logit_dynamics.chain ~pool game ~beta in
        let pi = Logit.Gibbs.stationary space phi ~beta in
        Markov.Mixing.mixing_time ~pool ~eps:mix_eps ~max_steps:mix_max_steps
          chain pi ~starts:mix_starts)
      betas
  in
  let sweep_family () =
    let fam = Logit.Logit_dynamics.chain_family ~pool game ~betas in
    let pis =
      Array.of_list
        (List.map (fun beta -> Logit.Gibbs.stationary space phi ~beta) betas)
    in
    Array.to_list
      (Markov.Mixing.family_mixing_times ~pool ~eps:mix_eps
         ~max_steps:mix_max_steps fam ~pis ~starts:mix_starts)
  in
  let (pp_times, t_pp_sweep), (fam_times, t_fam_sweep) =
    time_pair ~reps:(if quick then 9 else 5) sweep_per_point sweep_family
  in
  let sweep_identical = pp_times = fam_times in
  (* (b) Multi-β panel advancement: narrow panels (the daemon's
     regime, where the shared index structure rather than the panel
     dominates the traffic), [sweep_steps] steps — one
     evolve_many_into per plane per step vs the fused multi-plane
     traversal that reads each column's metadata once for the whole
     grid. *)
  let np = grid_points in
  let k = Int.min size 32 in
  let mk_panels () =
    Array.init np (fun _ ->
        let p = Bigarray.Array1.create Bigarray.Float64 Bigarray.C_layout (k * size) in
        Bigarray.Array1.fill p 0.;
        for r = 0 to k - 1 do
          Bigarray.Array1.set p ((r * size) + r) 1.
        done;
        p)
  in
  let scratch_panels () =
    Array.init np (fun _ ->
        Bigarray.Array1.create Bigarray.Float64 Bigarray.C_layout (k * size))
  in
  let advance_loop body =
    let src = ref (mk_panels ()) and dst = ref (scratch_panels ()) in
    for _ = 1 to sweep_steps do
      body !src !dst;
      let previous = !src in
      src := !dst;
      dst := previous
    done;
    !src
  in
  let run_sequential () =
    advance_loop (fun src dst ->
        List.iteri
          (fun p c -> Markov.Chain.evolve_many_into ~pool c ~k ~src:src.(p) ~dst:dst.(p))
          per_point)
  in
  let run_fused () =
    advance_loop (fun src dst ->
        Markov.Family.evolve_many_into ~pool family ~k ~src ~dst)
  in
  let (seq_panels, t_seq), (fused_panels, t_fused) =
    time_pair ~reps:(if quick then 9 else 5) run_sequential run_fused
  in
  let panels_identical =
    let ok = ref true in
    Array.iteri
      (fun p a ->
        let b = fused_panels.(p) in
        for i = 0 to (k * size) - 1 do
          (* Bit-equality, not tolerance: the fused kernel's contract. *)
          if Int64.bits_of_float (Bigarray.Array1.get a i)
             <> Int64.bits_of_float (Bigarray.Array1.get b i)
          then ok := false
        done)
      seq_panels;
    !ok
  in
  (* (c) The structure-once store layout: cold build-and-file vs warm
     decode of structure + per-β planes. *)
  let root =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "logitdyn-bench-family-%d" (Unix.getpid ()))
  in
  let cas = Store.Cas.open_ ~dir:root () in
  ignore (Store.Cas.clear cas);
  let through_store () =
    Markov.Family_codec.cached ~store:cas ~game:"bench-ring-family" ~size ~betas
      ~variant:"sequential-logit" (fun () ->
        Logit.Logit_dynamics.chain_family ~pool game ~betas)
  in
  let f_cold, t_cold = time through_store in
  let f_warm, t_warm = time through_store in
  let store_identical =
    List.for_all Fun.id
      (List.mapi
         (fun i _ ->
           chain_equal (Markov.Family.plane f_cold i) (Markov.Family.plane f_warm i)
           && chain_equal (Markov.Family.plane f_warm i) (Markov.Family.plane family i))
         betas)
  in
  ignore (Store.Cas.clear cas);
  let table =
    Experiments.Table.create
      ~title:
        (Printf.sprintf
           "beta-family ablation: per-point vs shared structure (clique n=%d, \
            |S|=%d, %d grid points, %d domains)"
           n_players size grid_points jobs)
      [
        ("workload / arm", Experiments.Table.Left);
        ("seconds", Experiments.Table.Right);
        ("speedup", Experiments.Table.Right);
        ("bit-identical", Experiments.Table.Right);
      ]
  in
  let add name seconds speedup bit =
    Experiments.Table.add_row table
      [
        name;
        Printf.sprintf "%.4f" seconds;
        Printf.sprintf "%.2fx" speedup;
        Experiments.Table.cell_bool bit;
      ]
  in
  add "beta_grid_sweep / per_point" t_pp_sweep 1.0 true;
  add "beta_grid_sweep / family" t_fam_sweep (t_pp_sweep /. t_fam_sweep)
    sweep_identical;
  add "beta_grid_build / per_point" t_per_point 1.0 true;
  add "beta_grid_build / family" t_family (t_per_point /. t_family) build_identical;
  add
    (Printf.sprintf "panel_sweep(%d) / sequential" sweep_steps)
    t_seq 1.0 true;
  add
    (Printf.sprintf "panel_sweep(%d) / fused" sweep_steps)
    t_fused (t_seq /. t_fused) panels_identical;
  add "family_store / cold" t_cold 1.0 true;
  add "family_store / warm" t_warm (t_cold /. t_warm) store_identical;
  Experiments.Table.add_note table
    (Printf.sprintf "shared structure: %b; bit-identical = family path vs the \
                     independent per-beta path, gated."
       (Markov.Family.shared_structure family));
  Experiments.Table.print table;
  if not (sweep_identical && build_identical && panels_identical && store_identical)
  then Printf.printf "WARNING: a family arm diverged from its per-beta build!\n";
  let json_path = Filename.concat (Sys.getcwd ()) Bench.Sink.family_path in
  let json =
    Printf.sprintf
      {|{
  "bench": "family_ablation",
  "quick": %b,
  "jobs": %d,
  "grid_points": %d,
  "game": { "kind": "clique_coordination", "n": %d, "states": %d },
  "shared_structure": %b,
  "workloads": [
    { "name": "beta_grid_sweep", "arm": "per_point", "seconds": %.6f,
      "speedup": 1.0, "jobs": %d, "bit_identical": true },
    { "name": "beta_grid_sweep", "arm": "family", "seconds": %.6f,
      "speedup": %.3f, "jobs": %d, "bit_identical": %b },
    { "name": "beta_grid_build", "arm": "per_point", "seconds": %.6f,
      "speedup": 1.0, "jobs": %d, "bit_identical": true },
    { "name": "beta_grid_build", "arm": "family", "seconds": %.6f,
      "speedup": %.3f, "jobs": %d, "bit_identical": %b },
    { "name": "panel_sweep", "arm": "sequential", "seconds": %.6f,
      "speedup": 1.0, "jobs": %d, "bit_identical": true },
    { "name": "panel_sweep", "arm": "fused", "seconds": %.6f,
      "speedup": %.3f, "jobs": %d, "bit_identical": %b },
    { "name": "family_store", "arm": "cold", "seconds": %.6f,
      "speedup": 1.0, "jobs": %d, "bit_identical": true },
    { "name": "family_store", "arm": "warm", "seconds": %.6f,
      "speedup": %.3f, "jobs": %d, "bit_identical": %b }
  ]
}
|}
      quick jobs grid_points n_players size
      (Markov.Family.shared_structure family)
      t_pp_sweep jobs t_fam_sweep
      (t_pp_sweep /. t_fam_sweep)
      jobs sweep_identical t_per_point jobs t_family
      (t_per_point /. t_family)
      jobs build_identical t_seq jobs t_fused (t_seq /. t_fused) jobs
      panels_identical t_cold jobs t_warm (t_cold /. t_warm) jobs
      store_identical
  in
  record_snapshot ~label:"beta-family ablation" ~legacy_path:json_path json

let run_micro () =
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:None ~stabilize:true ()
  in
  let grouped = Test.make_grouped ~name:"kernels" tests in
  let raw = Benchmark.all cfg instances grouped in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun name ols acc ->
        let estimate =
          match Analyze.OLS.estimates ols with
          | Some (x :: _) -> x
          | _ -> nan
        in
        let r2 = Option.value ~default:nan (Analyze.OLS.r_square ols) in
        (name, estimate, r2) :: acc)
      results []
  in
  let table =
    Experiments.Table.create ~title:"micro-benchmarks (Bechamel, OLS estimate)"
      [
        ("benchmark", Experiments.Table.Left);
        ("ns/run", Experiments.Table.Right);
        ("r^2", Experiments.Table.Right);
      ]
  in
  List.iter
    (fun (name, ns, r2) ->
      Experiments.Table.add_row table
        [ name; Printf.sprintf "%.1f" ns; Printf.sprintf "%.4f" r2 ])
    (List.sort compare rows);
  Experiments.Table.print table

let () =
  Printf.printf "logitdyn benchmark harness%s\n"
    (if quick then " (quick mode)" else "");
  if csr_only then begin
    Printf.printf "phase 1.6: CSR storage ablation (pre-CSR vs CSR kernels)\n%!";
    run_csr_ablation ()
  end
  else if store_only then begin
    Printf.printf "phase 1.7: artifact store ablation (cold vs warm)\n%!";
    run_store_ablation ()
  end
  else if spmm_only then begin
    Printf.printf "phase 1.8: SpMM kernel ablation (push vs pull vs SpMM)\n%!";
    run_spmm_ablation ()
  end
  else if serve_only then begin
    Printf.printf "phase 1.9: daemon load bench (coalescing + open loop)\n%!";
    run_serve_ablation ()
  end
  else if ooc_only then begin
    Printf.printf "phase 1.10: out-of-core segment ablation (mmap + stream)\n%!";
    run_ooc_ablation ()
  end
  else if family_only then begin
    Printf.printf
      "phase 1.11: beta-family ablation (per-point vs shared structure)\n%!";
    run_family_ablation ()
  end
  else begin
    Printf.printf
      "phase 1: regenerating every experiment table (E1..E9, X1..X10)\n";
    let t0 = Common.Clock.monotonic_ns () in
    Experiments.Registry.run_all ~quick ();
    Printf.printf "\nphase 1 elapsed: %.1fs\n" (Common.Clock.span_s ~since:t0);
    Printf.printf "\nphase 1.5: serial vs parallel ablation (%d domains)\n%!" jobs;
    run_ablation ();
    Printf.printf
      "\nphase 1.6: CSR storage ablation (pre-CSR vs CSR kernels)\n%!";
    run_csr_ablation ();
    Printf.printf "\nphase 1.7: artifact store ablation (cold vs warm)\n%!";
    run_store_ablation ();
    Printf.printf "\nphase 1.8: SpMM kernel ablation (push vs pull vs SpMM)\n%!";
    run_spmm_ablation ();
    Printf.printf "\nphase 1.9: daemon load bench (coalescing + open loop)\n%!";
    run_serve_ablation ();
    Printf.printf "\nphase 1.10: out-of-core segment ablation (mmap + stream)\n%!";
    run_ooc_ablation ();
    Printf.printf
      "\nphase 1.11: beta-family ablation (per-point vs shared structure)\n%!";
    run_family_ablation ();
    if not skip_micro then begin
      Printf.printf "\nphase 2: micro-benchmarks\n%!";
      run_micro ()
    end
  end
