(** E4 — Theorem 3.6: O(n log n) mixing below the beta threshold.

    See DESIGN.md (per-experiment index) for workload, parameters and
    the modules exercised; EXPERIMENTS.md records representative
    output. *)

(** [run ~quick] produces the result tables; [quick] shrinks every
    sweep to CI scale. *)
val run : quick:bool -> Table.t list
