(** Gibbs stationary measures of potential games (paper, eq. (4)).

    For a potential game with potential Φ the logit chain is
    reversible with stationary distribution π(x) = exp(-βΦ(x))/Z. *)

(** [stationary space phi ~beta] is the Gibbs measure as a dense
    probability vector (log-domain normalisation). *)
val stationary :
  Games.Strategy_space.t -> (int -> float) -> beta:float -> float array

(** [log_partition space phi ~beta] is log Z_β = log Σ_x exp(-βΦ(x)). *)
val log_partition : Games.Strategy_space.t -> (int -> float) -> beta:float -> float

(** [pi_min space phi ~beta] is the minimum stationary probability —
    the quantity entering the spectral upper bound of Theorem 2.3. *)
val pi_min : Games.Strategy_space.t -> (int -> float) -> beta:float -> float

(** [of_game game ~beta] recovers the potential of [game] and returns
    its Gibbs measure; [None] if [game] is not an exact potential
    game. *)
val of_game : Games.Game.t -> beta:float -> float array option

(** [expected_potential space phi ~beta] is E_π[Φ], the equilibrium
    expected potential (decreasing in β). *)
val expected_potential :
  Games.Strategy_space.t -> (int -> float) -> beta:float -> float
