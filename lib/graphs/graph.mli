(** Simple undirected graphs on vertices [{0, ..., n-1}].

    These are the social graphs of graphical coordination games
    (Section 5 of the paper). The representation is an adjacency list
    kept sorted, with no self-loops and no parallel edges. *)

type t

(** [create n] is the edgeless graph on [n] vertices, [n >= 0]. *)
val create : int -> t

(** [of_edges n edges] builds a graph on [n] vertices from an edge
    list. Self-loops are rejected, duplicate edges (in either
    orientation) are collapsed. Raises [Invalid_argument] on
    out-of-range endpoints. *)
val of_edges : int -> (int * int) list -> t

(** [add_edge g u v] is [g] with edge [{u, v}] added (idempotent).
    Raises [Invalid_argument] on self-loops or out-of-range vertices. *)
val add_edge : t -> int -> int -> t

(** [num_vertices g] is the number of vertices. *)
val num_vertices : t -> int

(** [num_edges g] is the number of edges. *)
val num_edges : t -> int

(** [neighbors g v] lists the neighbours of [v] in increasing order. *)
val neighbors : t -> int -> int list

(** [degree g v] is the degree of [v]. *)
val degree : t -> int -> int

(** [max_degree g] is the maximum degree ([0] for the empty graph). *)
val max_degree : t -> int

(** [has_edge g u v] tests edge membership. *)
val has_edge : t -> int -> int -> bool

(** [edges g] lists all edges as pairs [(u, v)] with [u < v], sorted. *)
val edges : t -> (int * int) list

(** [fold_edges f acc g] folds over edges [(u, v)], [u < v]. *)
val fold_edges : ('a -> int -> int -> 'a) -> 'a -> t -> 'a

(** [equal g h] tests structural equality. *)
val equal : t -> t -> bool

(** [pp] prints a summary with vertex and edge counts and edge list. *)
val pp : Format.formatter -> t -> unit
