(* Pure resolution of the store-related CLI flags, shared by logitdyn
   and logitdynd. Kept free of cmdliner so the conflict matrix is unit
   testable: the binaries collect every occurrence with
   [Arg.opt_all]/[flag_all] and map [Error] to a usage failure with
   exit code 2. *)

type store_choice = { dir : string option; no_cache : bool }

let resolve_store ~stores ~no_cache_count =
  if List.length stores > 1 then
    Error "--store given more than once; pass a single store directory"
  else if no_cache_count > 1 then Error "--no-cache given more than once"
  else
    match stores with
    | _ :: _ when no_cache_count > 0 ->
        Error "--store conflicts with --no-cache: pick a store or disable it"
    | [ dir ] -> Ok { dir = Some dir; no_cache = false }
    | _ -> Ok { dir = None; no_cache = no_cache_count > 0 }

type beta_choice = Beta_single of float | Beta_grid of float list

(* LO:HI:STEP → [lo; lo+step; ...] up to hi inclusive, with a small
   absolute slack so that grids like 0.5:2.0:0.5 whose endpoint is not
   exactly representable still include it. The points are generated as
   [lo +. float i *. step] — the same expression a caller scripting
   separate --beta invocations would write — so per-point β bits match
   per-point runs. *)
let parse_grid spec =
  let fail () =
    Error
      (Printf.sprintf
         "--betas %S: expected LO:HI:STEP with LO >= 0, STEP > 0, HI >= LO" spec)
  in
  match String.split_on_char ':' spec with
  | [ lo_s; hi_s; step_s ] -> (
      match
        (float_of_string_opt lo_s, float_of_string_opt hi_s,
         float_of_string_opt step_s)
      with
      | Some lo, Some hi, Some step ->
          if
            (not (Float.is_finite lo && Float.is_finite hi && Float.is_finite step))
            || lo < 0. || step <= 0. || hi < lo
          then fail ()
          else begin
            let count =
              1 + int_of_float (Float.floor (((hi -. lo) /. step) +. 1e-9))
            in
            Ok (List.init count (fun i -> lo +. (float_of_int i *. step)))
          end
      | _ -> fail ())
  | _ -> fail ()

let resolve_betas ~beta ~betas =
  match (beta, betas) with
  | Some _, Some _ ->
      Error "--beta conflicts with --betas: pick one point or a grid"
  | Some b, None -> Ok (Beta_single b)
  | None, None -> Ok (Beta_single 1.0)
  | None, Some spec -> (
      match parse_grid spec with
      | Error _ as e -> e
      | Ok points -> Ok (Beta_grid points))
