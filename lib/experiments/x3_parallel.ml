(** X3 (extension) — simultaneous updates (paper conclusions).

    All players updating at once gives an ergodic chain whose
    stationary distribution is {e not} the Gibbs measure: we measure
    the TV gap between the two as a function of β, together with both
    chains' mixing times, on a 2-player coordination game and a ring.
    The gap grows with β (at β = 0 both are uniform), and the parallel
    chain's apparent speed is paid for with a distorted equilibrium —
    the quantitative caveat behind the paper's closing remark. *)

open Games

let run ~quick =
  let table =
    Table.create ~title:"X3 (conclusions): parallel vs sequential logit dynamics"
      [
        ("game", Table.Left);
        ("beta", Table.Right);
        ("TV(parallel pi, Gibbs)", Table.Right);
        ("t_mix sequential", Table.Right);
        ("t_mix parallel", Table.Right);
      ]
  in
  let betas = if quick then [ 0.5; 2.0 ] else [ 0.0; 0.5; 1.0; 2.0; 3.0; 4.0 ] in
  let games =
    [
      Coordination.to_game (Coordination.of_deltas ~delta0:1.0 ~delta1:0.7);
      Graphical.to_game
        (Graphical.create
           (Graphs.Generators.ring (if quick then 4 else 6))
           (Coordination.of_deltas ~delta0:1.0 ~delta1:1.0));
    ]
  in
  List.iter
    (fun game ->
      let phi = Option.get (Potential.recover game) in
      List.iter
        (fun beta ->
          let gap = Logit.Parallel_logit.gibbs_gap game phi ~beta in
          let seq_chain = Logit.Logit_dynamics.chain game ~beta in
          let seq_pi = Logit.Gibbs.stationary (Game.space game) phi ~beta in
          let seq_tmix =
            Markov.Mixing.mixing_time_spectral seq_chain seq_pi
              ~starts:(List.init (Game.size game) Fun.id)
          in
          let par_chain = Logit.Parallel_logit.chain game ~beta in
          let par_pi = Logit.Parallel_logit.stationary game ~beta in
          let par_tmix =
            (* non-reversible: exact repeated squaring instead of
               stepwise evolution *)
            Markov.Mixing.mixing_time_squaring par_chain par_pi
              ~starts:(List.init (Game.size game) Fun.id)
          in
          Table.add_row table
            [
              Game.name game;
              Table.cell_float beta;
              Table.cell_float gap;
              Table.cell_opt_int seq_tmix;
              Table.cell_opt_int par_tmix;
            ])
        betas)
    games;
  Table.add_note table
    "TV gap = 0 would mean simultaneous updates preserve the Gibbs \
     equilibrium; it grows with beta instead.";
  [ table ]
