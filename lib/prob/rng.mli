(** A self-contained, splittable pseudo-random number generator.

    The generator is SplitMix64 (Steele, Lea & Flood 2014): a 64-bit
    counter advanced by a Weyl increment and scrambled by a finaliser.
    It is small, fast, passes BigCrush, and — crucially for this
    library — deterministic and splittable, so every experiment and
    every simulated chain can be reproduced bit-for-bit from a seed
    and independent streams can be derived for parallel replicas. *)

type t

(** [create seed] is a fresh generator initialised from [seed]. *)
val create : int -> t

(** [copy t] is an independent generator in the same state as [t]. *)
val copy : t -> t

(** [split t] advances [t] and returns a generator whose stream is
    (statistically) independent of the remainder of [t]'s stream. *)
val split : t -> t

(** [split_n t n] derives [n] pairwise-independent streams by [n]
    successive splits of [t] (advancing [t] exactly [n] times). The
    derivation is purely sequential and deterministic in [t]'s state,
    so stream [i] is the same whether the streams are later consumed
    serially or by any number of parallel workers — the foundation of
    reproducible parallel Monte Carlo. Raises [Invalid_argument] on a
    negative count. *)
val split_n : t -> int -> t array

(** [bits64 t] is the next raw 64-bit output. *)
val bits64 : t -> int64

(** [float t] is uniform on [[0, 1)]. *)
val float : t -> float

(** [int t bound] is uniform on [{0, ..., bound-1}].
    Raises [Invalid_argument] if [bound <= 0]. *)
val int : t -> int -> int

(** [bool t] is a fair coin flip. *)
val bool : t -> bool

(** [bernoulli t p] is [true] with probability [p] (clamped to [0,1]). *)
val bernoulli : t -> float -> bool

(** [exponential t ~rate] samples Exp(rate). Raises [Invalid_argument]
    if [rate <= 0]. *)
val exponential : t -> rate:float -> float

(** [geometric t p] is the number of failures before the first success
    of a Bernoulli(p) sequence. Raises [Invalid_argument] unless
    [0 < p <= 1]. *)
val geometric : t -> float -> int

(** [categorical t weights] samples index [i] with probability
    proportional to [weights.(i)]. Weights must be non-negative with a
    strictly positive sum; raises [Invalid_argument] otherwise. *)
val categorical : t -> float array -> int

(** [categorical_pick weights ~u] is the deterministic selection core
    of {!categorical}: the first index whose running prefix sum
    exceeds the threshold [u ∈ [0, Σ weights)]. A [u] at or beyond the
    accumulated total — reachable only through floating-point rounding
    of [u = uniform · Σ weights] — falls back to the last strictly
    positive weight, so zero-weight tails are never selected. Performs
    no validation; exposed for boundary testing and for callers that
    supply their own uniform variates. *)
val categorical_pick : float array -> u:float -> int

(** [shuffle t a] permutes [a] in place uniformly at random
    (Fisher–Yates). *)
val shuffle : t -> 'a array -> unit
