(* The typed pass: load a .cmt (dune -bin-annot output), reconstruct
   enough of the compile-time environment to expand type abbreviations,
   and hand the Typedtree to each typed rule. Runs per source file,
   downstream of the same config/suppression machinery as the
   syntactic pass. *)

type rule = {
  name : string;
  doc : string;
  applies : string -> bool;
  check : report:Lint.reporter -> Typedtree.structure -> unit;
}

(* ------------------------------------------------------------------ *)
(* Environment reconstruction. A cmt stores environments as summaries;
   Envaux rebuilds real ones by reloading cmis from the load path. The
   recorded load path is the one dune used inside its sandbox —
   cmt_builddir says "/workspace_root" and the entries are relative —
   so relative entries must be rebased onto the real build directory
   before Load_path can serve them. *)

let rebase_loadpath ~root (infos : Cmt_format.cmt_infos) =
  let base =
    if
      Sys.file_exists infos.cmt_builddir
      && Sys.is_directory infos.cmt_builddir
    then infos.cmt_builddir
    else Filename.concat (Filename.concat root "_build") "default"
  in
  List.filter_map
    (fun d ->
      if d = "" then None
      else if Filename.is_relative d then Some (Filename.concat base d)
      else Some d)
    infos.cmt_loadpath

let init_env ~root infos =
  Load_path.init ~auto_include:Load_path.no_auto_include
    (rebase_loadpath ~root infos);
  Envaux.reset_cache ()

(* [expand env ty] — the abbreviation-free head of [ty], or [ty] itself
   when the environment cannot be rebuilt (missing cmi on the rebased
   path). Rules treat that fallback conservatively. *)
let expand env ty =
  match Ctype.expand_head (Envaux.env_of_only_summary env) ty with
  | ty' -> ty'
  | exception _ -> ty

(* ------------------------------------------------------------------ *)
(* Shared helpers for path matching in rules. *)

let rec path_components (p : Path.t) acc =
  match p with
  | Path.Pident id -> Ident.name id :: acc
  | Path.Pdot (p', s) -> path_components p' (s :: acc)
  | Path.Papply (p', _) -> path_components p' acc
  | Path.Pextra_ty (p', _) -> path_components p' acc

let components p = path_components p []

(* ------------------------------------------------------------------ *)
(* Loading. Returns the implementation structure, verifying the cmt
   really came from [relpath] (the scan locator is heuristic). *)

let load_structure ~root ~relpath cmt_path =
  match Cmt_format.read_cmt cmt_path with
  | exception _ -> None
  | infos -> (
      let source_matches =
        match infos.cmt_sourcefile with
        | None -> true
        | Some src -> Filename.basename src = Filename.basename relpath
      in
      if not source_matches then None
      else
        match infos.cmt_annots with
        | Cmt_format.Implementation str ->
            init_env ~root infos;
            Some str
        | _ -> None)

(* ------------------------------------------------------------------ *)

let run_pass ~root ~files ~config_for ~rules ~cmt_for =
  let findings = ref [] in
  let analysed = ref 0 in
  let skipped = ref [] in
  List.iter
    (fun relpath ->
      if Filename.check_suffix relpath ".ml" then
        let active =
          List.filter
            (fun r ->
              r.applies relpath
              && not
                   (Lint.Config.disables (config_for relpath) ~rule:r.name
                      ~path:relpath))
            rules
        in
        if active <> [] then
          match cmt_for relpath with
          | None -> skipped := relpath :: !skipped
          | Some cmt_path -> (
              match load_structure ~root ~relpath cmt_path with
              | None -> skipped := relpath :: !skipped
              | Some str ->
                  incr analysed;
                  let lines = Lint.read_lines (Filename.concat root relpath) in
                  let out = ref [] in
                  List.iter
                    (fun r ->
                      r.check
                        ~report:
                          (Lint.reporter ~rule:r.name ~relpath ~lines ~into:out)
                        str)
                    active;
                  findings := List.rev_append !out !findings))
    files;
  (List.rev !findings, !analysed, List.rev !skipped)
