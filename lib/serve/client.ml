(* Blocking client for the logitdynd socket: used by the logitdyn
   query subcommand, the serve test suite and the open-loop load
   bench. Supports pipelining — send any number of requests, then
   collect responses in order — which is how the bench and the
   coalescing tests pile concurrent work onto one server iteration. *)

module P = Protocol

type t = {
  fd : Unix.file_descr;
  reader : P.Reader.t;
  buf : Bytes.t;
  mutable next_id : int;
}

let connect ~socket_path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  match Unix.connect fd (Unix.ADDR_UNIX socket_path) with
  | () ->
      Ok { fd; reader = P.Reader.create (); buf = Bytes.create 65536; next_id = 1 }
  | exception Unix.Unix_error (err, _, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Error
        (Printf.sprintf "cannot connect to %s: %s" socket_path
           (Unix.error_message err))

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

let fresh_id t =
  let id = t.next_id in
  t.next_id <- id + 1;
  id

let send t (req : P.request) =
  let out = Buffer.create 256 in
  P.write_framed out (P.encode_request req);
  let s = Buffer.contents out in
  let len = String.length s in
  let rec go off =
    if off < len then begin
      match Unix.write_substring t.fd s off (len - off) with
      | n -> go (off + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
      | exception Unix.Unix_error (err, _, _) ->
          Error (Printf.sprintf "send failed: %s" (Unix.error_message err))
    end
    else Ok ()
  in
  go 0

let recv t =
  let rec go () =
    match P.Reader.next t.reader with
    | Error msg -> Error msg
    | Ok (Some frame) -> P.decode_response frame
    | Ok None -> (
        match Unix.read t.fd t.buf 0 (Bytes.length t.buf) with
        | 0 -> Error "connection closed by server"
        | n ->
            P.Reader.feed t.reader t.buf ~len:n;
            go ()
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
        | exception Unix.Unix_error (err, _, _) ->
            Error (Printf.sprintf "recv failed: %s" (Unix.error_message err)))
  in
  go ()

let call t ?deadline_ms query =
  let id = fresh_id t in
  match send t { P.id; deadline_ms; query } with
  | Error _ as e -> e
  | Ok () -> (
      match recv t with
      | Error _ as e -> e
      | Ok resp when resp.P.req_id <> id ->
          Error
            (Printf.sprintf "response id %d does not match request id %d"
               resp.P.req_id id)
      | Ok resp -> Ok resp.P.result)

let query ~socket_path ?deadline_ms q =
  match connect ~socket_path with
  | Error _ as e -> e
  | Ok t ->
      Fun.protect ~finally:(fun () -> close t) (fun () -> call t ?deadline_ms q)
