type t = {
  bench : string;
  workload : string;
  arm : string;
  seconds : float;
  speedup : float;
  correct : bool;
  quick : bool;
  jobs : int;
  rev : string;
  host : string;
  timestamp : float;
  peak_rss_kb : int option;
}

(* Adding the optional [peak_rss_kb] field is schema-compatible both
   ways: old decoders never see the key (it is omitted when [None]),
   new decoders default it — so the version stays at 1. *)
let schema_version = 1

let ( let* ) = Result.bind

let non_empty name s =
  if s = "" then Error (Printf.sprintf "Bench.Record: empty %s" name) else Ok s

let finite_non_negative name f =
  if Float.is_nan f then Error (Printf.sprintf "Bench.Record: %s is NaN" name)
  else if not (Float.is_finite f) then
    Error (Printf.sprintf "Bench.Record: %s is infinite" name)
  else if f < 0. then Error (Printf.sprintf "Bench.Record: negative %s" name)
  else Ok f

let validate t =
  let* _ = non_empty "bench" t.bench in
  let* _ = non_empty "workload" t.workload in
  let* _ = non_empty "arm" t.arm in
  let* _ = finite_non_negative "seconds" t.seconds in
  let* _ = finite_non_negative "speedup" t.speedup in
  let* _ =
    if t.speedup > 0. then Ok () else Error "Bench.Record: speedup must be > 0"
  in
  let* _ =
    if t.jobs >= 1 then Ok () else Error "Bench.Record: jobs must be >= 1"
  in
  let* _ = finite_non_negative "timestamp" t.timestamp in
  let* _ =
    match t.peak_rss_kb with
    | Some k when k < 0 -> Error "Bench.Record: negative peak_rss_kb"
    | Some _ | None -> Ok ()
  in
  Ok t

let v ?(rev = "unknown") ?(host = "unknown") ?(timestamp = 0.) ?peak_rss_kb
    ~bench ~workload ~arm ~seconds ~speedup ~correct ~quick ~jobs () =
  validate
    {
      bench;
      workload;
      arm;
      seconds;
      speedup;
      correct;
      quick;
      jobs;
      rev;
      host;
      timestamp;
      peak_rss_kb;
    }

let key t =
  Printf.sprintf "%s/%s/%s quick=%b jobs=%d" t.bench t.workload t.arm t.quick
    t.jobs

let to_json t =
  Json.Obj
    ([
      ("bench", Json.Str t.bench);
      ("workload", Json.Str t.workload);
      ("arm", Json.Str t.arm);
      ("seconds", Json.Num t.seconds);
      ("speedup", Json.Num t.speedup);
      ("correct", Json.Bool t.correct);
      ("quick", Json.Bool t.quick);
      ("jobs", Json.Num (float_of_int t.jobs));
      ("rev", Json.Str t.rev);
      ("host", Json.Str t.host);
      ("timestamp", Json.Num t.timestamp);
    ]
    @
    match t.peak_rss_kb with
    | None -> []
    | Some k -> [ ("peak_rss_kb", Json.Num (float_of_int k)) ])

let of_json j =
  let* bench = Json.str_field "bench" j in
  let* workload = Json.str_field "workload" j in
  let* arm = Json.str_field "arm" j in
  let* seconds = Json.num_field "seconds" j in
  let* speedup = Json.num_field "speedup" j in
  let* correct = Json.bool_field "correct" j in
  let* quick = Json.bool_field "quick" j in
  let* jobs = Json.int_field "jobs" j in
  let* rev = Json.str_field "rev" j in
  let* host = Json.str_field "host" j in
  let* timestamp = Json.num_field "timestamp" j in
  (* Absent in every pre-ooc trajectory line: default to [None]. *)
  let* peak_rss_kb =
    match Json.member "peak_rss_kb" j with
    | None | Some Json.Null -> Ok None
    | Some _ -> Result.map Option.some (Json.int_field "peak_rss_kb" j)
  in
  validate
    {
      bench;
      workload;
      arm;
      seconds;
      speedup;
      correct;
      quick;
      jobs;
      rev;
      host;
      timestamp;
      peak_rss_kb;
    }

let pp fmt t =
  Format.fprintf fmt "%s/%s/%s: %.6fs (%.2fx)%s%s jobs=%d rev=%s%s" t.bench
    t.workload t.arm t.seconds t.speedup
    (if t.correct then "" else " INCORRECT")
    (if t.quick then " quick" else "")
    t.jobs t.rev
    (match t.peak_rss_kb with
    | None -> ""
    | Some k -> Printf.sprintf " rss=%dkB" k)
