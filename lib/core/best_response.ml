open Games

let random_best_response rng game player idx =
  let responses = Game.best_responses game player idx in
  let k = List.length responses in
  List.nth responses (if k = 1 then 0 else Prob.Rng.int rng k)

let step rng game idx =
  let space = Game.space game in
  let player = Prob.Rng.int rng (Strategy_space.num_players space) in
  let a = random_best_response rng game player idx in
  Strategy_space.replace space idx player a

let run_until_nash rng game ~start ~max_steps =
  let rec go state steps =
    if Game.is_pure_nash game state then Some (state, steps)
    else if steps >= max_steps then None
    else go (step rng game state) (steps + 1)
  in
  go start 0

let absorption_histogram rng game ~start ~replicas ~max_steps =
  if replicas < 1 then invalid_arg "Best_response.absorption_histogram";
  let counts = Hashtbl.create 8 in
  for _ = 1 to replicas do
    match run_until_nash rng game ~start ~max_steps with
    | Some (profile, _) ->
        Hashtbl.replace counts profile
          (1 + Option.value ~default:0 (Hashtbl.find_opt counts profile))
    | None -> ()
  done;
  List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) counts [])

let chain game =
  let space = Game.space game in
  let n = Strategy_space.num_players space in
  let inv_n = 1. /. float_of_int n in
  Markov.Chain.of_function (Game.size game) (fun idx ->
      let self = ref 0. in
      let entries = ref [] in
      for i = 0 to n - 1 do
        let responses = Game.best_responses game i idx in
        let p = inv_n /. float_of_int (List.length responses) in
        List.iter
          (fun a ->
            let target = Strategy_space.replace space idx i a in
            if target = idx then self := !self +. p
            else entries := (target, p) :: !entries)
          responses
      done;
      if !self > 0. then (idx, !self) :: !entries else !entries)
