let rec mkdir_p path =
  if path <> "" && path <> "/" && path <> "." && not (Sys.file_exists path)
  then begin
    mkdir_p (Filename.dirname path);
    (* A concurrent creator winning the race is fine. *)
    try Sys.mkdir path 0o755 with Sys_error _ when Sys.is_directory path -> ()
  end

let write_atomic ?tmp_dir ~path contents =
  let tmp_dir = match tmp_dir with Some d -> d | None -> Filename.dirname path in
  mkdir_p tmp_dir;
  let tmp = Filename.temp_file ~temp_dir:tmp_dir ".atomic-" ".tmp" in
  match
    let oc = open_out_bin tmp in
    Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () ->
        output_string oc contents);
    Sys.rename tmp path
  with
  | () -> ()
  | exception e ->
      (try Sys.remove tmp with Sys_error _ -> ());
      raise e

let read_file path =
  match open_in_bin path with
  | exception Sys_error _ -> None
  | ic ->
      Fun.protect ~finally:(fun () -> close_in_noerr ic) (fun () ->
          match really_input_string ic (in_channel_length ic) with
          | s -> Some s
          | exception End_of_file -> None)
