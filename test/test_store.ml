(* The artifact store: codec round trips (bit-identical, QCheck'd),
   corrupt-input rejection, the content-addressed cache, chain/table
   artifacts, and the resumable sweep driver. *)

open Helpers

(* ---------------- plumbing ---------------- *)

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
    Sys.rmdir path
  end
  else Sys.remove path

let with_store f =
  let root = Filename.temp_file "logitdyn" ".store" in
  Sys.remove root;
  let cas = Store.Cas.open_ ~dir:root () in
  Fun.protect
    ~finally:(fun () -> try rm_rf root with Sys_error _ -> ())
    (fun () -> f cas)

let bits_equal a b =
  Array.length a = Array.length b
  && begin
       let ok = ref true in
       Array.iteri
         (fun i x ->
           if Int64.bits_of_float x <> Int64.bits_of_float b.(i) then ok := false)
         a;
       !ok
     end

let is_error = function Error _ -> true | Ok _ -> false

let flip_bit s ~byte ~bit =
  let b = Bytes.of_string s in
  Bytes.set b byte (Char.chr (Char.code (Bytes.get b byte) lxor (1 lsl bit)));
  Bytes.to_string b

(* Floats including every special value the IEEE bit-pattern encoding
   must survive. *)
let float_special_gen =
  QCheck.Gen.oneof
    [
      QCheck.Gen.float;
      QCheck.Gen.oneofl
        [
          Float.nan;
          Float.infinity;
          Float.neg_infinity;
          0.;
          -0.;
          Float.min_float;
          Float.max_float;
          Float.epsilon;
        ];
    ]

let float_array_arb =
  QCheck.make
    ~print:(fun a ->
      String.concat ";" (Array.to_list (Array.map (Printf.sprintf "%h") a)))
    QCheck.Gen.(array_size (0 -- 40) float_special_gen)

(* ---------------- Codec: dist / curve round trips ---------------- *)

let qcheck_dist_roundtrip =
  QCheck.Test.make ~name:"decode_dist (encode_dist a) is bit-identical"
    ~count:200 float_array_arb (fun a ->
      match Store.Codec.decode_dist (Store.Codec.encode_dist a) with
      | Ok b -> bits_equal a b
      | Error _ -> false)

let qcheck_curve_roundtrip =
  QCheck.Test.make ~name:"decode_curve (encode_curve a) is bit-identical"
    ~count:200 float_array_arb (fun a ->
      match Store.Codec.decode_curve (Store.Codec.encode_curve a) with
      | Ok b -> bits_equal a b
      | Error _ -> false)

let qcheck_kind_confusion =
  QCheck.Test.make ~name:"a dist artifact never decodes as a curve" ~count:50
    float_array_arb (fun a ->
      is_error (Store.Codec.decode_curve (Store.Codec.encode_dist a))
      && is_error (Store.Codec.decode_dist (Store.Codec.encode_curve a)))

let sample_artifact () =
  Store.Codec.encode_dist [| 1.5; -2.25; Float.nan; 0.125; 1e300 |]

let truncation_rejected () =
  let s = sample_artifact () in
  (match Store.Codec.decode_dist s with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "intact artifact rejected: %s" e);
  for len = 0 to String.length s - 1 do
    if not (is_error (Store.Codec.decode_dist (String.sub s 0 len))) then
      Alcotest.failf "truncation to %d bytes accepted" len
  done

let bit_flips_rejected () =
  let s = sample_artifact () in
  for byte = 0 to String.length s - 1 do
    for bit = 0 to 7 do
      if not (is_error (Store.Codec.decode_dist (flip_bit s ~byte ~bit))) then
        Alcotest.failf "flip of bit %d in byte %d accepted" bit byte
    done
  done

let trailing_bytes_rejected () =
  let s = sample_artifact () in
  check_true "trailing garbage rejected"
    (is_error (Store.Codec.decode_dist (s ^ "\x00")));
  check_true "doubled artifact rejected"
    (is_error (Store.Codec.decode_dist (s ^ s)))

let inspect_reports_kind () =
  (match Store.Codec.inspect (sample_artifact ()) with
  | Ok (Store.Codec.Dist, len) -> check_true "payload length positive" (len > 0)
  | Ok _ -> Alcotest.fail "inspect returned the wrong kind"
  | Error e -> Alcotest.failf "inspect rejected a sound artifact: %s" e);
  check_true "inspect rejects garbage"
    (is_error (Store.Codec.inspect "not an artifact"))

let crc32_check_value () =
  (* The standard CRC-32 (IEEE 802.3) check value. *)
  check_int "crc32(\"123456789\")" 0xCBF43926 (Store.Codec.crc32 "123456789")

(* ---------------- Codec: the u32 frame bound ---------------- *)

let u32_bound_is_typed () =
  check_int "max_payload_bytes is the u32 bound" 0xFFFF_FFFF
    Store.Codec.max_payload_bytes;
  (* In-range u32s encode; out-of-range values fail at encode time
     with a typed error instead of wrapping silently into the frame. *)
  let enc v =
    Store.Codec.frame ~kind:Store.Codec.Dist (fun b -> Store.Codec.Enc.u32 b v)
  in
  ignore (enc 0 : string);
  ignore (enc 0xFFFF_FFFF : string);
  check_raises_invalid "u32 overflow" (fun () -> ignore (enc 0x1_0000_0000));
  check_raises_invalid "negative u32" (fun () -> ignore (enc (-1)))

let oversized_prefix_rejected () =
  (* A frame whose payload declares 2^32-1 array elements but carries
     none: the frame itself is sound (inspect passes), but the
     bounds-checked payload reader must return a clean Error — no
     out-of-bounds read, no 32 GB allocation, no escaping exception. *)
  let s =
    Store.Codec.frame ~kind:Store.Codec.Dist (fun b ->
        Store.Codec.Enc.u32 b 0xFFFF_FFFF)
  in
  (match Store.Codec.inspect s with
  | Ok (Store.Codec.Dist, _) -> ()
  | Ok _ -> Alcotest.fail "inspect returned the wrong kind"
  | Error e -> Alcotest.failf "inspect rejected a sound frame: %s" e);
  check_true "oversized length prefix rejected cleanly"
    (is_error (Store.Codec.decode_dist s))

(* ---------------- Codec: chain artifacts ---------------- *)

let test_chain seed =
  let game, _phi = random_potential_game seed in
  Logit.Logit_dynamics.chain game ~beta:1.2

let chains_bit_identical a b =
  let n = Markov.Chain.size a in
  Markov.Chain.size b = n
  && begin
       let ok = ref true in
       for i = 0 to n - 1 do
         if Markov.Chain.row a i <> Markov.Chain.row b i then ok := false;
         (* The sampler reads the cum array: same u must pick the same
            successor, bit for bit. *)
         List.iter
           (fun u ->
             if
               Markov.Chain.sample_step_of a i ~u
               <> Markov.Chain.sample_step_of b i ~u
             then ok := false)
           [ 0.; 0.124; 0.5; 0.87; 0.999999 ]
       done;
       !ok
     end

let qcheck_chain_roundtrip =
  QCheck.Test.make ~name:"chain artifacts round trip bit-identically"
    ~count:25
    QCheck.(make Gen.(0 -- 10_000))
    (fun seed ->
      let chain = test_chain seed in
      match Markov.Chain_codec.decode (Markov.Chain_codec.encode chain) with
      | Ok decoded -> chains_bit_identical chain decoded
      | Error _ -> false)

let chain_evolve_identical () =
  let chain = test_chain 7 in
  let decoded =
    match Markov.Chain_codec.decode (Markov.Chain_codec.encode chain) with
    | Ok c -> c
    | Error e -> Alcotest.failf "chain decode failed: %s" e
  in
  let n = Markov.Chain.size chain in
  let mu = Array.init n (fun i -> 1. /. float_of_int (i + 1)) in
  let total = Array.fold_left ( +. ) 0. mu in
  let mu = Array.map (fun x -> x /. total) mu in
  check_true "evolve is bit-identical"
    (bits_equal (Markov.Chain.evolve chain mu) (Markov.Chain.evolve decoded mu))

let chain_artifact_corruption () =
  let s = Markov.Chain_codec.encode (test_chain 3) in
  for len = 0 to String.length s - 1 do
    if not (is_error (Markov.Chain_codec.decode (String.sub s 0 len))) then
      Alcotest.failf "truncated chain artifact (%d bytes) accepted" len
  done;
  check_true "dist artifact is not a chain"
    (is_error (Markov.Chain_codec.decode (sample_artifact ())));
  check_true "chain artifact is not a dist"
    (is_error (Store.Codec.decode_dist s))

let of_csr_validation () =
  let chain = test_chain 5 in
  let row_start, cols, probs = Markov.Chain.to_csr chain in
  (* The valid arrays reconstruct. *)
  ignore (Markov.Chain.of_csr ~row_start ~cols ~probs);
  check_raises_invalid "empty chain" (fun () ->
      Markov.Chain.of_csr ~row_start:[| 0 |] ~cols:[||] ~probs:[||]);
  check_raises_invalid "cols/probs mismatch" (fun () ->
      Markov.Chain.of_csr ~row_start ~cols ~probs:(Array.sub probs 0 1));
  check_raises_invalid "offsets do not span" (fun () ->
      let bad = Array.copy row_start in
      bad.(Array.length bad - 1) <- bad.(Array.length bad - 1) + 1;
      Markov.Chain.of_csr ~row_start:bad ~cols ~probs);
  check_raises_invalid "column out of range" (fun () ->
      let bad = Array.copy cols in
      bad.(0) <- Markov.Chain.size chain;
      Markov.Chain.of_csr ~row_start ~cols:bad ~probs);
  check_raises_invalid "columns not strictly increasing" (fun () ->
      let bad = Array.copy cols in
      let swap = bad.(0) in
      bad.(0) <- bad.(1);
      bad.(1) <- swap;
      Markov.Chain.of_csr ~row_start ~cols:bad ~probs);
  check_raises_invalid "row does not sum to one" (fun () ->
      let bad = Array.copy probs in
      bad.(0) <- bad.(0) /. 2.;
      Markov.Chain.of_csr ~row_start ~cols ~probs:bad);
  check_raises_invalid "NaN probability" (fun () ->
      let bad = Array.copy probs in
      bad.(0) <- Float.nan;
      Markov.Chain.of_csr ~row_start ~cols ~probs:bad)

(* ---------------- Codec: table artifacts ---------------- *)

let sample_table () =
  let t =
    Experiments.Table.create ~title:"mixing vs beta (ring n=6)"
      [ ("beta", Experiments.Table.Left); ("t_mix", Experiments.Table.Right) ]
  in
  Experiments.Table.add_row t [ "0.1"; "14" ];
  Experiments.Table.add_row t [ "2.0"; ">1e6" ];
  Experiments.Table.add_note t "quick mode; see EXPERIMENTS.md";
  t

let table_roundtrip () =
  let t = sample_table () in
  match Experiments.Table.decode (Experiments.Table.encode t) with
  | Ok d ->
      Alcotest.(check string)
        "decoded table renders identically" (Experiments.Table.render t)
        (Experiments.Table.render d)
  | Error e -> Alcotest.failf "table decode failed: %s" e

let table_empty_roundtrip () =
  let t = Experiments.Table.create ~title:"" [ ("only", Experiments.Table.Left) ] in
  match Experiments.Table.decode (Experiments.Table.encode t) with
  | Ok d ->
      Alcotest.(check string)
        "empty table round trips" (Experiments.Table.render t)
        (Experiments.Table.render d)
  | Error e -> Alcotest.failf "empty table decode failed: %s" e

let table_list_roundtrip () =
  let ts = [ sample_table (); sample_table () ] in
  match Experiments.Table.decode_list (Experiments.Table.encode_list ts) with
  | Ok ds ->
      check_int "list length" 2 (List.length ds);
      List.iter2
        (fun a b ->
          Alcotest.(check string)
            "each table renders identically" (Experiments.Table.render a)
            (Experiments.Table.render b))
        ts ds
  | Error e -> Alcotest.failf "table list decode failed: %s" e

let table_corruption () =
  let s = Experiments.Table.encode (sample_table ()) in
  for len = 0 to String.length s - 1 do
    if not (is_error (Experiments.Table.decode (String.sub s 0 len))) then
      Alcotest.failf "truncated table artifact (%d bytes) accepted" len
  done;
  check_true "single table is not a table list"
    (is_error (Experiments.Table.decode_list s));
  check_true "table list is not a single table"
    (is_error
       (Experiments.Table.decode (Experiments.Table.encode_list [ sample_table () ])))

(* ---------------- keys ---------------- *)

let key_canonicalisation () =
  let k = Store.Key.v ~kind:"chain" [ ("game", "ring"); ("n", "8") ] in
  let k' = Store.Key.v ~kind:"chain" [ ("game", "ring"); ("n", "8") ] in
  Alcotest.(check string) "same recipe, same digest" (Store.Key.digest k)
    (Store.Key.digest k');
  check_int "digest is 32 hex chars" 32 (String.length (Store.Key.digest k));
  let reordered = Store.Key.v ~kind:"chain" [ ("n", "8"); ("game", "ring") ] in
  check_true "field order is part of the recipe"
    (Store.Key.digest k <> Store.Key.digest reordered);
  let other_kind = Store.Key.v ~kind:"dist" [ ("game", "ring"); ("n", "8") ] in
  check_true "kind is part of the recipe"
    (Store.Key.digest k <> Store.Key.digest other_kind);
  check_raises_invalid "newline in a value" (fun () ->
      Store.Key.v ~kind:"chain" [ ("game", "ri\nng") ]);
  check_raises_invalid "'=' in a field name" (fun () ->
      Store.Key.v ~kind:"chain" [ ("ga=me", "ring") ])

let float_field_exact () =
  Alcotest.(check string)
    "same float, same field"
    (Store.Key.float_field 0.1)
    (Store.Key.float_field 0.1);
  check_true "adjacent floats get different fields"
    (Store.Key.float_field 0.1
    <> Store.Key.float_field (Float.succ 0.1))

(* ---------------- the cache ---------------- *)

let cas_put_get_stats () =
  with_store (fun cas ->
      let key = Store.Key.v ~kind:"test" [ ("x", "1") ] in
      check_true "miss on empty store" (Option.is_none (Store.Cas.get cas key));
      Store.Cas.put cas key "artifact-bytes";
      (match Store.Cas.get cas key with
      | Some s -> Alcotest.(check string) "bytes round trip" "artifact-bytes" s
      | None -> Alcotest.fail "put then get returned nothing");
      check_true "mem sees the object" (Store.Cas.mem cas key);
      let s = Store.Cas.stats cas in
      check_int "one hit" 1 s.Store.Cas.hits;
      check_int "one miss" 1 s.Store.Cas.misses;
      check_int "one write" 1 s.Store.Cas.writes)

let cas_corrupt_objects_dropped () =
  with_store (fun cas ->
      let key = Store.Key.v ~kind:"test" [ ("x", "1") ] in
      Store.Cas.put cas key "definitely not a framed artifact";
      check_true "corrupt object decodes to None"
        (Option.is_none
           (Store.Cas.get_decoded cas key ~decode:Store.Codec.decode_dist));
      check_false "corrupt object was deleted" (Store.Cas.mem cas key);
      (* The rebuilt artifact takes its place. *)
      Store.Cas.put cas key (Store.Codec.encode_dist [| 0.5; 0.5 |]);
      match Store.Cas.get_decoded cas key ~decode:Store.Codec.decode_dist with
      | Some a -> check_true "rebuilt artifact decodes" (bits_equal [| 0.5; 0.5 |] a)
      | None -> Alcotest.fail "sound artifact failed to decode")

let cas_ls_verify_tamper () =
  with_store (fun cas ->
      Store.Cas.put cas
        (Store.Key.v ~kind:"test" [ ("x", "1") ])
        (Store.Codec.encode_dist [| 1. |]);
      Store.Cas.put cas
        (Store.Key.v ~kind:"test" [ ("x", "2") ])
        (Store.Codec.encode_curve [| 0.5; 0.25 |]);
      let entries = Store.Cas.ls cas in
      check_int "two objects listed" 2 (List.length entries);
      check_true "ls is sorted by digest"
        (match entries with
        | [ a; b ] -> a.Store.Cas.digest < b.Store.Cas.digest
        | _ -> false);
      List.iter
        (fun (e : Store.Cas.entry) -> check_true "size recorded" (e.size > 0))
        entries;
      check_true "all objects verify"
        (List.for_all (fun (_, st) -> Result.is_ok st) (Store.Cas.verify cas));
      (* Tamper with one object on disk; verify must report exactly it. *)
      let victim = List.hd entries in
      let oc = open_out victim.Store.Cas.path in
      output_string oc "scribbled over";
      close_out oc;
      let bad =
        List.filter (fun (_, st) -> Result.is_error st) (Store.Cas.verify cas)
      in
      (match bad with
      | [ (e, Error _) ] ->
          Alcotest.(check string)
            "the tampered object is the one reported" victim.Store.Cas.digest
            e.Store.Cas.digest
      | _ -> Alcotest.fail "expected exactly one corrupt object");
      check_true "remove deletes it"
        (Store.Cas.remove cas ~digest:victim.Store.Cas.digest);
      check_int "one object left" 1 (List.length (Store.Cas.ls cas)))

let cas_gc_clear () =
  with_store (fun cas ->
      Store.Cas.put cas (Store.Key.v ~kind:"t" [ ("x", "1") ]) "aa";
      Store.Cas.put cas (Store.Key.v ~kind:"t" [ ("x", "2") ]) "bbbb";
      (* Nothing is older than a day. *)
      let n, _ = Store.Cas.gc cas ~older_than:86_400. in
      check_int "young objects survive gc" 0 n;
      (* Everything is older than -1 seconds. *)
      let n, bytes = Store.Cas.gc cas ~older_than:(-1.) in
      check_int "gc removes both" 2 n;
      check_int "gc reports the bytes" 6 bytes;
      Store.Cas.put cas (Store.Key.v ~kind:"t" [ ("x", "3") ]) "cc";
      check_int "clear removes the rest" 1 (Store.Cas.clear cas);
      check_int "store is empty" 0 (List.length (Store.Cas.ls cas)))

let cas_gc_max_bytes_lru () =
  with_store (fun cas ->
      let put i data =
        Store.Cas.put cas (Store.Key.v ~kind:"t" [ ("i", string_of_int i) ]) data
      in
      put 1 "aaaa";
      put 2 "bb";
      put 3 "cccccc";
      (* A segment file beside the objects shares the byte budget. *)
      let seg =
        Store.Cas.segment_path cas (Store.Key.v ~kind:"segment" [ ("i", "1") ])
      in
      let oc = open_out_bin seg in
      output_string oc "sssss";
      close_out oc;
      (match Store.Cas.ls_segments cas with
      | [ e ] -> check_int "segment listed with its size" 5 e.Store.Cas.size
      | _ -> Alcotest.fail "expected exactly one segment");
      (* Stage write times so the LRU order is deterministic: the 4-byte
         object is the least recently written, then the segment, then
         the 2-byte, then the 6-byte object. *)
      let now = Common.Clock.wall_s () in
      let set_age path age = Unix.utimes path (now -. age) (now -. age) in
      let by_size sz =
        (List.find (fun (e : Store.Cas.entry) -> e.size = sz) (Store.Cas.ls cas))
          .Store.Cas.path
      in
      set_age (by_size 4) 400.;
      set_age seg 300.;
      set_age (by_size 2) 200.;
      set_age (by_size 6) 100.;
      check_raises_invalid "negative budget" (fun () ->
          ignore (Store.Cas.gc ~max_bytes:(-1) cas ~older_than:86_400.));
      (* 17 bytes on disk, budget 9: evict the 4-byte object then the
         5-byte segment (oldest first); the survivors fit. *)
      let n, bytes = Store.Cas.gc ~max_bytes:9 cas ~older_than:86_400. in
      check_int "evicts the two least-recently written" 2 n;
      check_int "frees their bytes" 9 bytes;
      check_int "the segment was evicted" 0
        (List.length (Store.Cas.ls_segments cas));
      let sizes =
        List.sort compare
          (List.map (fun (e : Store.Cas.entry) -> e.Store.Cas.size)
             (Store.Cas.ls cas))
      in
      check_true "the newest objects survive" (sizes = [ 2; 6 ]);
      (* A budget the store already fits under is a no-op. *)
      let n, bytes = Store.Cas.gc ~max_bytes:1_000_000 cas ~older_than:86_400. in
      check_int "no-op under budget" 0 n;
      check_int "no bytes freed" 0 bytes)

let cas_atomic_leaves_no_temps () =
  with_store (fun cas ->
      for i = 1 to 20 do
        Store.Cas.put cas
          (Store.Key.v ~kind:"t" [ ("i", string_of_int i) ])
          (String.make (i * 10) 'x')
      done;
      let tmp = Filename.concat (Store.Cas.dir cas) "tmp" in
      check_int "no temp files left behind" 0 (Array.length (Sys.readdir tmp));
      check_int "all objects present" 20 (List.length (Store.Cas.ls cas)))

let chain_codec_cached_builds_once () =
  with_store (fun cas ->
      let builds = ref 0 in
      let build () =
        incr builds;
        test_chain 11
      in
      let key =
        Markov.Chain_codec.recipe ~game:"test" ~size:8 ~beta:1.2
          ~variant:"sequential-logit" ()
      in
      let c1 = Markov.Chain_codec.cached ~store:cas key build in
      let c2 = Markov.Chain_codec.cached ~store:cas key build in
      check_int "second call served from the store" 1 !builds;
      check_true "cached chain is bit-identical" (chains_bit_identical c1 c2);
      (* Without a store every call builds. *)
      let c3 = Markov.Chain_codec.cached key build in
      check_int "no store, no memoisation" 2 !builds;
      check_true "uncached build agrees" (chains_bit_identical c1 c3))

(* ---------------- the sweep driver ---------------- *)

let with_serial_sweep f =
  Fun.protect ~finally:(fun () -> Experiments.Sweep.set_jobs 1) f

let sweep_map_input_order () =
  with_serial_sweep (fun () ->
      let xs = List.init 23 Fun.id in
      let expected = List.map (fun x -> (10 * x) + 1) xs in
      List.iter
        (fun jobs ->
          Experiments.Sweep.set_jobs jobs;
          let ys = Experiments.Sweep.map (fun x -> (10 * x) + 1) xs in
          check_true
            (Printf.sprintf "map preserves input order under %d job(s)" jobs)
            (ys = expected))
        [ 1; 2; 4 ])

let sweep_map_cached_input_order () =
  with_serial_sweep (fun () ->
      with_store (fun cas ->
          let xs = List.init 17 Fun.id in
          let key i =
            Store.Key.v ~kind:"point" [ ("i", string_of_int i) ]
          in
          let encode y = Store.Codec.encode_dist [| y |] in
          let decode s =
            Result.map
              (fun a -> if Array.length a = 1 then a.(0) else Float.nan)
              (Store.Codec.decode_dist s)
          in
          let f i = float_of_int (7 * i) in
          let expected = List.map f xs in
          List.iter
            (fun jobs ->
              Experiments.Sweep.set_jobs jobs;
              let ys =
                Experiments.Sweep.map_cached ~store:cas ~key ~encode ~decode f
                  xs
              in
              check_true
                (Printf.sprintf
                   "map_cached preserves input order under %d job(s)" jobs)
                (ys = expected))
            [ 1; 2; 4 ]))

let sweep_set_jobs_shuts_down_previous () =
  with_serial_sweep (fun () ->
      Experiments.Sweep.set_jobs 2;
      let old =
        match Experiments.Sweep.current_pool () with
        | Some p -> p
        | None -> Alcotest.fail "set_jobs 2 installed no pool"
      in
      Experiments.Sweep.set_jobs 3;
      check_raises_invalid "the replaced pool is shut down" (fun () ->
          Exec.Pool.map old ~n:4 Fun.id);
      Experiments.Sweep.set_jobs 1;
      check_true "jobs <= 1 reverts to serial"
        (Option.is_none (Experiments.Sweep.current_pool ())))

let sweep_resume_skips_completed () =
  with_serial_sweep (fun () ->
      with_store (fun cas ->
          let grid = List.init 10 Fun.id in
          let key i =
            Store.Key.v ~kind:"point" [ ("i", string_of_int i) ]
          in
          let encode y = Store.Codec.encode_dist [| y |] in
          let decode s =
            Result.map
              (fun a -> if Array.length a = 1 then a.(0) else Float.nan)
              (Store.Codec.decode_dist s)
          in
          let calls = ref 0 in
          let f i =
            incr calls;
            float_of_int (3 * i)
          in
          let expected = List.map (fun i -> float_of_int (3 * i)) grid in
          (* A run killed after 4 of 10 points: only those artifacts
             exist when the sweep restarts. *)
          List.iter
            (fun i -> Store.Cas.put cas (key i) (encode (float_of_int (3 * i))))
            [ 0; 1; 2; 3 ];
          let ys =
            Experiments.Sweep.map_cached ~store:cas ~key ~encode ~decode f grid
          in
          check_int "only the 6 missing points were computed" 6 !calls;
          check_true "results are complete and in input order" (ys = expected);
          (* A completed sweep re-runs without computing anything. *)
          let ys2 =
            Experiments.Sweep.map_cached ~store:cas ~key ~encode ~decode f grid
          in
          check_int "second run computes nothing" 6 !calls;
          check_true "and returns the same results" (ys2 = expected);
          (* A corrupt checkpoint is recomputed, not trusted. *)
          Store.Cas.put cas (key 5) "scribbled";
          let ys3 =
            Experiments.Sweep.map_cached ~store:cas ~key ~encode ~decode f grid
          in
          check_int "exactly the corrupt point was recomputed" 7 !calls;
          check_true "results still correct" (ys3 = expected)))

(* ---------------- atomic writes ---------------- *)

let write_atomic_basic () =
  let dir = Filename.temp_file "logitdyn" ".io" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () -> try rm_rf dir with Sys_error _ -> ())
    (fun () ->
      let path = Filename.concat dir "out.json" in
      Store.Io.write_atomic ~path "first";
      (match Store.Io.read_file path with
      | Some s -> Alcotest.(check string) "contents written" "first" s
      | None -> Alcotest.fail "file missing after write_atomic");
      Store.Io.write_atomic ~path "second, longer contents";
      (match Store.Io.read_file path with
      | Some s ->
          Alcotest.(check string) "overwrite replaces atomically"
            "second, longer contents" s
      | None -> Alcotest.fail "file missing after overwrite");
      check_int "no temp files left next to the target" 1
        (Array.length (Sys.readdir dir)))

let suites =
  [
    ( "store.codec",
      [
        qcheck qcheck_dist_roundtrip;
        qcheck qcheck_curve_roundtrip;
        qcheck qcheck_kind_confusion;
        test "every truncation is rejected" truncation_rejected;
        test "every single-bit flip is rejected" bit_flips_rejected;
        test "trailing bytes are rejected" trailing_bytes_rejected;
        test "inspect reports kind and length" inspect_reports_kind;
        test "crc32 matches the IEEE check value" crc32_check_value;
        test "u32 encoding is bounds-typed" u32_bound_is_typed;
        test "oversized length prefixes are rejected" oversized_prefix_rejected;
      ] );
    ( "store.chain-codec",
      [
        qcheck qcheck_chain_roundtrip;
        test "decoded chains evolve bit-identically" chain_evolve_identical;
        test "corrupt chain artifacts are rejected" chain_artifact_corruption;
        test "of_csr revalidates the CSR invariant" of_csr_validation;
      ] );
    ( "store.table-codec",
      [
        test "table round trips to identical render" table_roundtrip;
        test "empty table round trips" table_empty_roundtrip;
        test "table lists round trip" table_list_roundtrip;
        test "corrupt table artifacts are rejected" table_corruption;
      ] );
    ( "store.key",
      [
        test "canonical digests" key_canonicalisation;
        test "float fields are exact" float_field_exact;
      ] );
    ( "store.cas",
      [
        test "put/get/mem and the counters" cas_put_get_stats;
        test "corrupt objects are dropped and rebuilt" cas_corrupt_objects_dropped;
        test "ls and verify report tampering" cas_ls_verify_tamper;
        test "gc by age and clear" cas_gc_clear;
        test "gc max-bytes evicts LRU across objects and segments"
          cas_gc_max_bytes_lru;
        test "atomic writes leave no temp files" cas_atomic_leaves_no_temps;
        test "chain builds memoise through the store" chain_codec_cached_builds_once;
      ] );
    ( "store.sweep",
      [
        test "map preserves input order across pool sizes" sweep_map_input_order;
        test "map_cached preserves input order across pool sizes"
          sweep_map_cached_input_order;
        test "set_jobs shuts down the previous pool"
          sweep_set_jobs_shuts_down_previous;
        test "an interrupted sweep resumes without recomputing"
          sweep_resume_skips_completed;
      ] );
    ("store.io", [ test "write_atomic writes and overwrites" write_atomic_basic ]);
  ]
