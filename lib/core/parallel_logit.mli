(** Simultaneous-update logit dynamics (paper, conclusions: "variations
    of such dynamics where players are allowed to update their
    strategies simultaneously").

    Every player performs the logit update at once:
    P(x, y) = Π_i σ_i(y_i | x). The chain remains ergodic for β < ∞
    but is {e not} reversible w.r.t. the Gibbs measure in general —
    its stationary distribution genuinely differs (experiment EX3
    quantifies the gap), and for coordination games at large β it can
    oscillate between mirror profiles, slowing convergence instead of
    speeding it up. *)

(** [transition_row game ~beta idx] is the (dense) row of the parallel
    chain — every profile is reachable in one step. *)
val transition_row : Games.Game.t -> beta:float -> int -> (int * float) list

(** [chain ?pool game ~beta] materialises the parallel chain. Θ(size²)
    memory: guarded to [size <= 4096]. [?pool] builds the dense rows
    across domains. *)
val chain : ?pool:Exec.Pool.t -> Games.Game.t -> beta:float -> Markov.Chain.t

(** [step rng game ~beta idx] simulates one simultaneous update. *)
val step : Prob.Rng.t -> Games.Game.t -> beta:float -> int -> int

(** [stationary game ~beta] is the exact stationary distribution (LU
    solve on the dense chain). *)
val stationary : Games.Game.t -> beta:float -> float array

(** [gibbs_gap game phi ~beta] is the total variation distance between
    the parallel chain's stationary distribution and the Gibbs measure
    of the sequential dynamics — zero would mean the parallel variant
    preserves the equilibrium; it generally does not. *)
val gibbs_gap : Games.Game.t -> (int -> float) -> beta:float -> float
