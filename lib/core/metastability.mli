(** Metastable structure of slow logit chains (paper conclusions;
    follow-up work [2] = Auletta et al., SODA 2012).

    When t_mix is exponential the interesting object is the transient
    behaviour: the chain equilibrates quickly {e within} a metastable
    basin and only crosses between basins on the exponential scale.
    The second eigenvector of the (symmetrised) chain encodes that
    structure: its sign partitions the state space into the two sets
    whose exchange is the slow mode, and the associated eigenvalue
    gives the escape scale. This module extracts both and provides
    quasi-stationary evolution inside a basin. *)

(** [slow_partition chain pi] is [(negative, positive, lambda2)]: the
    sign partition of the second eigenvector (states with entry < 0 /
    ≥ 0, each sorted) together with λ₂. For the paper's slow examples
    the partition recovers the bottleneck sets used in the lower-bound
    proofs (validated in the tests against the weight cut of the
    Theorem 3.5 game and the clique). Requires a reversible chain. *)
val slow_partition : Markov.Chain.t -> float array -> int list * int list * float

(** [escape_time_scale ~lambda2] is 1/(1-λ₂), the relaxation scale of
    the slow mode. *)
val escape_time_scale : lambda2:float -> float

(** [restricted_distribution pi subset] is π conditioned on the subset
    — the metastable ("quasi-stationary") profile the chain reaches
    inside a basin long before global mixing. Raises
    [Invalid_argument] if the subset has zero mass. *)
val restricted_distribution : float array -> (int -> bool) -> float array

(** [basin_tv_curve ?pool chain pi ~basin ~start ~steps] evolves a
    point mass from [start] and returns, for each time, the pair
    (TV to the restricted distribution of [basin], TV to π). The
    signature of metastability is the first coordinate collapsing
    long before the second moves. With [?pool] each step runs the
    pull-mode {!Markov.Chain.evolve_into} across domains — this is a
    single-distribution path, race-free only because the pull kernel
    gives every destination exactly one writer — with bit-identical
    results for any pool size. *)
val basin_tv_curve :
  ?pool:Exec.Pool.t -> Markov.Chain.t -> float array -> basin:(int -> bool) ->
  start:int -> steps:int -> (float * float) array
