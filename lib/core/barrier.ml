open Games

(* Union-find with component potential-minimum tracking. *)
module Uf = struct
  type t = { parent : int array; rank : int array; min_phi : float array }

  let create n phi =
    {
      parent = Array.init n Fun.id;
      rank = Array.make n 0;
      min_phi = Array.init n phi;
    }

  let rec find t i =
    if t.parent.(i) = i then i
    else begin
      let root = find t t.parent.(i) in
      t.parent.(i) <- root;
      root
    end

  (* Returns the merged root's minimum and the two pre-merge minima, or
     [None] if the two elements were already connected. *)
  let union t i j =
    let ri = find t i and rj = find t j in
    if ri = rj then None
    else begin
      let mi = t.min_phi.(ri) and mj = t.min_phi.(rj) in
      let big, small =
        if t.rank.(ri) >= t.rank.(rj) then (ri, rj) else (rj, ri)
      in
      t.parent.(small) <- big;
      if t.rank.(big) = t.rank.(small) then t.rank.(big) <- t.rank.(big) + 1;
      t.min_phi.(big) <- Float.min mi mj;
      Some (mi, mj)
    end
end

let zeta space phi =
  let size = Strategy_space.size space in
  let order = Array.init size Fun.id in
  let value = Array.init size phi in
  Array.sort
    (fun a b ->
      let c = compare value.(a) value.(b) in
      if c <> 0 then c else compare a b)
    order;
  let rank_of = Array.make size 0 in
  Array.iteri (fun r v -> rank_of.(v) <- r) order;
  let uf = Uf.create size phi in
  let best = ref 0. in
  Array.iteri
    (fun r v ->
      List.iter
        (fun u ->
          if rank_of.(u) < r then
            match Uf.union uf u v with
            | None -> ()
            | Some (m1, m2) ->
                let candidate = value.(v) -. Float.max m1 m2 in
                if candidate > !best then best := candidate)
        (Strategy_space.neighbors space v))
    order;
  !best

module Pq = Set.Make (struct
  type t = float * int

  let compare = compare
end)

let widest_path_from space phi src =
  let size = Strategy_space.size space in
  if src < 0 || src >= size then invalid_arg "Barrier.widest_path_from: bad source";
  let w = Array.make size infinity in
  let settled = Array.make size false in
  w.(src) <- phi src;
  let queue = ref (Pq.singleton (w.(src), src)) in
  while not (Pq.is_empty !queue) do
    let ((_, u) as entry) = Pq.min_elt !queue in
    queue := Pq.remove entry !queue;
    if not settled.(u) then begin
      settled.(u) <- true;
      List.iter
        (fun v ->
          if not settled.(v) then begin
            let candidate = Float.max w.(u) (phi v) in
            if candidate < w.(v) then begin
              queue := Pq.add (candidate, v) !queue;
              w.(v) <- candidate
            end
          end)
        (Strategy_space.neighbors space u)
    end
  done;
  w

let zeta_brute space phi =
  let size = Strategy_space.size space in
  let best = ref 0. in
  for x = 0 to size - 1 do
    let w = widest_path_from space phi x in
    for y = 0 to size - 1 do
      if y <> x then begin
        let candidate = w.(y) -. Float.max (phi x) (phi y) in
        if candidate > !best then best := candidate
      end
    done
  done;
  !best

let zeta_of_weight_potential ~players phi_of_weight =
  if players < 1 then invalid_arg "Barrier.zeta_of_weight_potential";
  let n = players in
  (* Merge sweep on the weight path {0..n}. *)
  let order = Array.init (n + 1) Fun.id in
  let value = Array.init (n + 1) phi_of_weight in
  Array.sort
    (fun a b ->
      let c = compare value.(a) value.(b) in
      if c <> 0 then c else compare a b)
    order;
  let rank_of = Array.make (n + 1) 0 in
  Array.iteri (fun r v -> rank_of.(v) <- r) order;
  let uf = Uf.create (n + 1) phi_of_weight in
  let best = ref 0. in
  Array.iteri
    (fun r k ->
      List.iter
        (fun k' ->
          if k' >= 0 && k' <= n && rank_of.(k') < r then
            match Uf.union uf k' k with
            | None -> ()
            | Some (m1, m2) ->
                let candidate = value.(k) -. Float.max m1 m2 in
                if candidate > !best then best := candidate)
        [ k - 1; k + 1 ])
    order;
  (* Same-shell pairs: two weight-k profiles (0 < k < n) are never
     adjacent on the cube, so a strict local-minimum shell forces a
     climb of min(φ(k-1), φ(k+1)) - φ(k) between its own profiles. *)
  for k = 1 to n - 1 do
    let here = phi_of_weight k in
    let lo = Float.min (phi_of_weight (k - 1)) (phi_of_weight (k + 1)) in
    if lo > here then begin
      let candidate = lo -. here in
      if candidate > !best then best := candidate
    end
  done;
  !best

let zeta_clique ~n ~delta0 ~delta1 =
  let phi k = Graphical.clique_potential ~n ~delta0 ~delta1 k in
  let kstar = Graphical.clique_kstar ~n ~delta0 ~delta1 in
  phi kstar -. Float.max (phi 0) (phi n)
