(** Binary β-family artifacts: structure filed once, one plane per β.

    A family over a β-grid shares one CSR index structure across all
    planes, so filing each plane as a full {!Chain_codec} artifact
    would write the index arrays once per grid point. This codec files
    the structure ONCE (kind [chain-structure]: layout version, row
    offsets, columns) and each β plane as probabilities only (kind
    [chain-plane]). Reassembly goes through {!Chain.of_csr} — full
    invariant revalidation, per-row prefix sums rebuilt in construction
    order — so a decoded family's planes evolve and sample
    bit-identically to the planes that were encoded.

    Per-β {!Chain_codec} keys and frames are untouched by this module:
    existing single-chain caches remain valid, and the two layouts can
    coexist in one store (distinct kinds, distinct keys). Families
    whose planes do {e not} share one structure
    ([not (Family.shared_structure f)]) are never filed — a plane-0
    structure would misrepresent the others — and are rebuilt cold. *)

(** The CSR layout generation, equal to {!Chain_codec.layout_version}
    (the planes are the same storage layout); embedded in payloads and
    keys so old-layout artifacts are orphaned, never misread. *)
val layout_version : int

(** [encode_structure f] frames plane 0's index arrays. *)
val encode_structure : Family.t -> string

(** [decode_structure s] parses a structure artifact into
    [(row_start, cols)]. *)
val decode_structure : string -> (int array * int array, string) result

(** [encode_plane c] frames [c]'s probability array alone. *)
val encode_plane : Chain.t -> string

(** [decode_plane s] parses a plane artifact into its probabilities. *)
val decode_plane : string -> (float array, string) result

(** [structure_key ~game ~size ~variant ()] is the canonical cache key
    of a family's shared structure: every β-independent input of the
    build (the β itself does not shape the structure by construction of
    the filing rule — only shared-structure families are filed). *)
val structure_key :
  ?extra:(string * string) list ->
  game:string ->
  size:int ->
  variant:string ->
  unit ->
  Store.Key.t

(** [plane_key ~game ~size ~beta ~variant ()] is the canonical cache
    key of one β plane — the structure key's fields plus the exact β
    as a hex-float. *)
val plane_key :
  ?extra:(string * string) list ->
  game:string ->
  size:int ->
  beta:float ->
  variant:string ->
  unit ->
  Store.Key.t

(** [cached ?store ~game ~size ~betas ~variant ?extra build] memoises a
    family build through the store: a hit requires the structure AND
    every plane of the grid to decode (anything less is a miss —
    partial grids rebuild, then file the missing artifacts). On a miss
    the freshly built family is filed only when its planes share one
    structure. Raises [Invalid_argument] on an empty [betas].
    Without a store it just builds. *)
val cached :
  ?store:Store.Cas.t ->
  game:string ->
  size:int ->
  betas:float list ->
  variant:string ->
  ?extra:(string * string) list ->
  (unit -> Family.t) ->
  Family.t
