(* β-family artifacts: the shared CSR index structure is filed ONCE
   (row offsets + columns, no probabilities) and each β plane files
   only its probability array. A warm family load therefore reads the
   index arrays once however many grid points there are, and the
   reassembled planes go through [Chain.of_csr] — full invariant
   revalidation, prefix sums rebuilt in pack order — so they evolve and
   sample bit-identically to the planes that were encoded.

   Per-β [Chain_codec] keys and frames are untouched: a family is an
   ADDITIONAL filing layout, not a replacement, so existing caches
   remain valid. Only families whose planes actually share one
   structure are filed ([Family.shared_structure]); filing a
   mixed-structure family under plane 0's structure would corrupt the
   other planes, so those families are simply rebuilt cold. *)

let layout_version = Chain_codec.layout_version

let encode_structure family =
  let row_start, cols, _ = Chain.to_csr (Family.plane family 0) in
  Store.Codec.frame ~kind:Store.Codec.Chain_structure (fun b ->
      Store.Codec.Enc.u32 b layout_version;
      Store.Codec.Enc.int_array b row_start;
      Store.Codec.Enc.int_array b cols)

let decode_structure s =
  Store.Codec.unframe ~kind:Store.Codec.Chain_structure s (fun d ->
      let v = Store.Codec.Dec.u32 d in
      if v <> layout_version then
        Store.Codec.Dec.fail
          (Printf.sprintf "chain-structure layout version %d (this build reads %d)"
             v layout_version);
      let row_start = Store.Codec.Dec.int_array d in
      let cols = Store.Codec.Dec.int_array d in
      (row_start, cols))

let encode_plane chain =
  let _, _, probs = Chain.to_csr chain in
  Store.Codec.frame ~kind:Store.Codec.Chain_plane (fun b ->
      Store.Codec.Enc.u32 b layout_version;
      Store.Codec.Enc.float_array b probs)

let decode_plane s =
  Store.Codec.unframe ~kind:Store.Codec.Chain_plane s (fun d ->
      let v = Store.Codec.Dec.u32 d in
      if v <> layout_version then
        Store.Codec.Dec.fail
          (Printf.sprintf "chain-plane layout version %d (this build reads %d)" v
             layout_version);
      Store.Codec.Dec.float_array d)

let common_fields ~game ~size ~variant extra =
  [
    ("game", game);
    ("size", string_of_int size);
    ("variant", variant);
    ("csr-layout", string_of_int layout_version);
    ("codec", string_of_int Store.Codec.version);
  ]
  @ extra

let structure_key ?(extra = []) ~game ~size ~variant () =
  Store.Key.v ~kind:"chain-structure" (common_fields ~game ~size ~variant extra)

let plane_key ?(extra = []) ~game ~size ~beta ~variant () =
  Store.Key.v ~kind:"chain-plane"
    (("beta", Store.Key.float_field beta) :: common_fields ~game ~size ~variant extra)

let load cas ~skey ~pkeys =
  match Store.Cas.get_decoded cas skey ~decode:decode_structure with
  | None -> None
  | Some (row_start, cols) ->
      let rec planes acc = function
        | [] -> Some (List.rev acc)
        | pkey :: rest -> (
            match Store.Cas.get_decoded cas pkey ~decode:decode_plane with
            | None -> None
            | Some probs -> (
                match Chain.of_csr ~row_start ~cols ~probs with
                | chain -> planes (chain :: acc) rest
                | exception Invalid_argument _ -> None))
      in
      planes [] pkeys

let cached ?store ~game ~size ~betas ~variant ?(extra = []) build =
  if betas = [] then invalid_arg "Family_codec.cached: empty beta grid";
  match store with
  | None -> build ()
  | Some cas -> (
      let skey = structure_key ~extra ~game ~size ~variant () in
      let pkeys =
        List.map (fun beta -> plane_key ~extra ~game ~size ~beta ~variant ()) betas
      in
      match load cas ~skey ~pkeys with
      | Some planes ->
          Family.v ~betas:(Array.of_list betas) ~planes:(Array.of_list planes)
      | None ->
          let family = build () in
          if Family.shared_structure family then begin
            Store.Cas.put cas skey (encode_structure family);
            List.iteri
              (fun i pkey ->
                Store.Cas.put cas pkey (encode_plane (Family.plane family i)))
              pkeys
          end;
          family)
