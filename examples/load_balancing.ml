(* Load balancing as a congestion game under the logit dynamics.

   n jobs each pick one of k identical links; the delay of a link is
   its load. This is the singleton congestion game of Asadpour-Saberi
   (cited in the paper's related work): a potential game via the
   Rosenthal potential, whose equilibria are the balanced assignments.

   We measure (a) the stationary expected social cost as a function of
   beta - noise costs efficiency, and the gap closes as beta grows;
   (b) the expected hitting time of a balanced configuration versus
   the mixing time; and (c) autocorrelation of the social cost along
   one trajectory, the practical convergence diagnostic.

   Run with: dune exec examples/load_balancing.exe *)

let () =
  let players = 6 and links = 3 in
  let cgame = Games.Congestion.linear_routing ~players ~links in
  let game = Games.Congestion.to_game cgame in
  let space = Games.Game.space game in
  let phi = Games.Congestion.rosenthal cgame in
  Printf.printf "Load balancing: %d jobs on %d identical links (delay = load)\n\n"
    players links;

  (* Optimal social cost: balanced loads of 2 -> each job pays 2. *)
  let social_cost idx = -.Games.Game.social_welfare game idx in
  let optimum =
    let best = ref infinity in
    Games.Strategy_space.iter space (fun idx ->
        if social_cost idx < !best then best := social_cost idx);
    !best
  in
  Printf.printf "optimal social cost = %g\n\n" optimum;

  Printf.printf "%6s  %18s  %10s  %12s\n" "beta" "E_pi[social cost]" "t_mix"
    "E[hit balanced]";
  List.iter
    (fun beta ->
      let chain = Logit.Logit_dynamics.chain game ~beta in
      let pi = Logit.Gibbs.stationary space phi ~beta in
      let expected_cost =
        let acc = ref 0. in
        Array.iteri (fun idx p -> acc := !acc +. (p *. social_cost idx)) pi;
        !acc
      in
      (* The slow mode is between BALANCED assignments (moving a job
         between them costs a +1 imbalance), so a balanced profile is
         the worst start; a monochromatic one covers the other
         extreme. *)
      let balanced =
        Games.Strategy_space.encode space
          (Array.init players (fun i -> i * links / players))
      in
      let monochromatic =
        Games.Strategy_space.encode space (Array.make players 0)
      in
      let tmix =
        Markov.Mixing.mixing_time ~max_steps:1_000_000 chain pi
          ~starts:[ balanced; monochromatic ]
      in
      let hit =
        Markov.Hitting.worst_expected_time chain ~target:(fun idx ->
            social_cost idx <= optimum +. 1e-9)
      in
      Printf.printf "%6.2f  %18.4f  %10s  %12.2f\n" beta expected_cost
        (match tmix with Some t -> string_of_int t | None -> ">1e6")
        hit)
    [ 0.0; 0.5; 1.0; 2.0; 4.0; 8.0 ];
  Printf.printf
    "\nThe equilibrium cost approaches the optimum as beta grows, and the\n\
     balanced configurations are hit quickly at every beta: the barrier is\n\
     only one migration step high, the mildest Thm 3.8 case.\n\n";

  (* The barrier equals one unit of delay: moving between balanced
     assignments costs a single +1 imbalance. *)
  Printf.printf "zeta = %g = one migration step (t_mix ~ e^{beta*zeta})\n"
    (Logit.Barrier.zeta space phi);
  let rng = Prob.Rng.create 3 in
  let traj = Logit.Logit_dynamics.trajectory rng game ~beta:2.0 ~start:0 ~steps:20_000 in
  let costs = Array.map social_cost traj in
  Printf.printf
    "trajectory diagnostics at beta=2: tau_int = %.1f steps, ESS = %.0f of %d\n"
    (Prob.Autocorr.integrated_time costs)
    (Prob.Autocorr.effective_sample_size costs)
    (Array.length costs)
