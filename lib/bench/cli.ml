let default_threshold = 10.

let err fmt = Format.eprintf ("bench: " ^^ fmt ^^ "@.")

let history ?(path = History.default_path) () =
  match History.load ~path with
  | Error msg ->
      err "%s" msg;
      2
  | Ok [] ->
      Format.printf "no bench history at %s@." path;
      0
  | Ok records ->
      Format.printf "# %s: %d records@." path (List.length records);
      List.iter (fun r -> Format.printf "%a@." Record.pp r) records;
      let latest = History.latest_by_key records in
      Format.printf "# latest per key (%d)@." (List.length latest);
      List.iter (fun r -> Format.printf "%a@." Record.pp r) latest;
      0

let compare ?(strict = false) ?(threshold = default_threshold) ~baseline
    ~candidate () =
  if not (Sys.file_exists candidate) then begin
    err "candidate trajectory %s does not exist" candidate;
    2
  end
  else
    match History.load ~path:candidate with
    | Error msg ->
        err "%s" msg;
        2
    | Ok cand -> (
        if not (Sys.file_exists baseline) then begin
          Format.printf
            "no baseline at %s: first run, gate passes vacuously@." baseline;
          0
        end
        else
          match History.load ~path:baseline with
          | Error msg ->
              err "%s" msg;
              2
          | Ok base ->
              let report =
                Gate.compare ~strict ~threshold ~baseline:base ~candidate:cand
                  ()
              in
              Format.printf "%a" Gate.pp_report report;
              if report.Gate.failed then 1 else 0)

let ingest ?(history_path = History.default_path) paths =
  let ( let* ) = Result.bind in
  let migrate_one path =
    let* contents =
      Store.Io.read_file path
      |> Option.to_result ~none:(Printf.sprintf "%s: cannot read" path)
    in
    match Migrate.of_legacy_string contents with
    | Ok records -> Ok records
    | Error msg -> Error (Printf.sprintf "%s: %s" path msg)
  in
  let rec go acc = function
    | [] -> Ok (List.concat (List.rev acc))
    | path :: rest ->
        let* records = migrate_one path in
        go (records :: acc) rest
  in
  match go [] paths with
  | Error msg ->
      err "%s" msg;
      2
  | Ok records -> (
      match History.append ~path:history_path records with
      | Error msg ->
          err "%s" msg;
          2
      | Ok all ->
          Format.printf "ingested %d records from %d files into %s (%d total)@."
            (List.length records) (List.length paths) history_path
            (List.length all);
          0)
