(** The logitdynd server: a single-threaded select loop over a
    Unix-domain socket.

    One loop iteration reads every readable client, admits requests
    into a bounded queue (beyond the bound each request is rejected
    with the typed {!Protocol.Overloaded} — never silently dropped),
    hands the whole queue to {!Scheduler.run_batch} (which coalesces
    same-chain mixing work — across clients — into one panel sweep),
    then flushes responses. Requests arriving while a batch computes
    accumulate in kernel buffers and form the next batch: concurrency
    becomes batch width.

    [Stats] requests are answered at read time from the live counters,
    never queued behind heavy work.

    Shutdown via {!stop} is graceful: the loop stops accepting,
    unlinks the socket, performs one final read pass over connected
    clients (capturing pipelined in-flight requests), processes that
    queue, and flushes every response with blocking writes before
    closing — in-flight requests never lose their responses. *)

type t

val default_max_queue : int
val default_max_clients : int

(** [create ?max_queue ?max_clients ~engine ~socket_path ()] binds and
    listens immediately (clients may connect before {!serve_forever}
    runs; the backlog holds them). An existing socket file at
    [socket_path] is replaced. [max_queue = 0] rejects every
    non-[Stats] request with [Overloaded] — degenerate, but what the
    overload tests pin down. Raises [Invalid_argument] on a negative
    [max_queue], [max_clients < 1] or an over-long socket path, and
    [Unix.Unix_error] if the socket cannot be bound. *)
val create :
  ?max_queue:int -> ?max_clients:int -> engine:Engine.t ->
  socket_path:string -> unit -> t

val socket_path : t -> string

(** [serve_forever t] runs the loop until {!stop}, then drains and
    returns. Call it at most once. *)
val serve_forever : t -> unit

(** [stop t] requests shutdown: an atomic flag plus a self-pipe wake.
    Safe from a signal handler or another domain; returns immediately
    (the loop drains and exits on its own). *)
val stop : t -> unit
