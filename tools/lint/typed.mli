(** The typed pass: load a source file's [.cmt] (dune [-bin-annot]
    output), rebuild enough typing environment to expand
    abbreviations, and run typed rules over the Typedtree. *)

type rule = {
  name : string;
  doc : string;
  applies : string -> bool;  (** relpath filter *)
  check : report:Lint.reporter -> Typedtree.structure -> unit;
}

(** [expand env ty] — the abbreviation-free head of [ty] via
    [Envaux.env_of_only_summary], or [ty] unchanged when the
    environment cannot be rebuilt (missing cmi on the rebased load
    path). Rules must treat the fallback conservatively. *)
val expand : Env.t -> Types.type_expr -> Types.type_expr

(** Dotted components of a path, outermost first:
    [Stdlib.Bigarray.Array1.get] gives
    [["Stdlib"; "Bigarray"; "Array1"; "get"]]. *)
val components : Path.t -> string list

(** [load_structure ~root ~relpath cmt_path] reads the cmt, checks it
    was compiled from [relpath] (the scan locator is heuristic),
    rebases its recorded load path onto [root/_build/default] (dune
    sandboxing records a build dir that no longer exists) and
    initialises [Load_path]/[Envaux] for {!expand}. [None] when the
    cmt is unreadable, mismatched, or not an implementation. *)
val load_structure :
  root:string -> relpath:string -> string -> Typedtree.structure option

(** [run_pass ~root ~files ~config_for ~rules ~cmt_for] runs every
    applicable rule over each .ml file whose cmt resolves. Returns
    (findings, files analysed, files skipped for want of a cmt). *)
val run_pass :
  root:string ->
  files:string list ->
  config_for:(string -> Lint.Config.t) ->
  rules:rule list ->
  cmt_for:(string -> string option) ->
  Lint.finding list * int * string list
