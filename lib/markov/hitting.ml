let interior_states t target =
  let n = Chain.size t in
  let interior = ref [] in
  for i = n - 1 downto 0 do
    if not (target i) then interior := i :: !interior
  done;
  if List.length !interior = n then invalid_arg "Hitting: empty target set";
  Array.of_list !interior

let expected_times t ~target =
  let n = Chain.size t in
  let interior = interior_states t target in
  let k = Array.length interior in
  let times = Array.make n 0. in
  if k > 0 then begin
    let index_of = Array.make n (-1) in
    Array.iteri (fun pos i -> index_of.(i) <- pos) interior;
    (* (I - P_interior) h = 1 over the non-target states. *)
    let a = Linalg.Mat.identity k in
    Array.iteri
      (fun row i ->
        Chain.iter_row t i (fun j p ->
            if index_of.(j) >= 0 then
              Linalg.Mat.set a row index_of.(j)
                (Linalg.Mat.get a row index_of.(j) -. p)))
      interior;
    let h = Linalg.Lu.solve a (Array.make k 1.) in
    Array.iteri (fun pos i -> times.(i) <- h.(pos)) interior
  end;
  times

let expected_time t ~start ~target = (expected_times t ~target).(start)

let worst_expected_time t ~target =
  Array.fold_left Float.max 0. (expected_times t ~target)

let probabilities t ~target ~avoid =
  let n = Chain.size t in
  let interior = ref [] in
  for i = n - 1 downto 0 do
    if not (target i || avoid i) then interior := i :: !interior
  done;
  let interior = Array.of_list !interior in
  let k = Array.length interior in
  let probs = Array.init n (fun i -> if target i then 1. else 0.) in
  if k > 0 then begin
    let index_of = Array.make n (-1) in
    Array.iteri (fun pos i -> index_of.(i) <- pos) interior;
    (* (I - P_interior) q = P(. , target) over states off both sets. *)
    let a = Linalg.Mat.identity k in
    let b = Array.make k 0. in
    Array.iteri
      (fun row i ->
        Chain.iter_row t i (fun j p ->
            if target j then b.(row) <- b.(row) +. p
            else if index_of.(j) >= 0 then
              Linalg.Mat.set a row index_of.(j)
                (Linalg.Mat.get a row index_of.(j) -. p)))
      interior;
    let q = Linalg.Lu.solve a b in
    Array.iteri (fun pos i -> probs.(i) <- q.(pos)) interior
  end;
  probs

let simulated rng t ~start ~target ~replicas ~max_steps =
  if replicas < 1 then invalid_arg "Hitting.simulated: need replicas";
  let total = ref 0. in
  for _ = 1 to replicas do
    let steps =
      match Chain.hitting_time rng t ~start ~target ~max_steps with
      | Some s -> s
      | None -> max_steps
    in
    total := !total +. float_of_int steps
  done;
  !total /. float_of_int replicas
