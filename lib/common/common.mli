(** Cross-library primitives shared by every layer of the system.

    This library is dependency-free on purpose: [linalg], [markov],
    [graphs] and [logit] all sit above it, so an exception defined
    here can travel across layer boundaries without forcing any other
    dependency edge. *)

(** Raised by iterative numerical routines when an iteration budget is
    exhausted before the convergence criterion is met: power iteration
    ({!Markov.Stationary.by_power}), QR/QL eigensolvers
    ({!Linalg.Eigen.general_spectrum}, {!Linalg.Tridiag.eigensystem}),
    coupling-from-the-past ({!Logit.Perfect_sampling.sample}) and
    restart-bounded randomized constructions
    ({!Graphs.Generators.random_regular}).

    Distinct from [Invalid_argument], which these modules reserve for
    precondition violations: [No_convergence] means the input was
    legal but the budget (iterations, epochs, restarts) ran out. The
    project lint rule [exn-policy] enforces this split by rejecting
    [failwith]/[Failure] anywhere under [lib/]. *)
exception No_convergence of string

(** [no_convergence fmt ...] raises {!No_convergence} with a
    [Printf]-formatted message. *)
val no_convergence : ('a, unit, string, 'b) format4 -> 'a

(** [feq ~eps a b] is [|a - b| <= eps] — the explicit tolerance
    comparison the [float-equality] lint rule points to. [eps = 0.]
    gives exact comparison (NaN compares unequal to everything, and
    unlike [Float.equal] [feq ~eps:0. nan nan] is [false]). Raises
    [Invalid_argument] on negative or NaN [eps]. *)
val feq : eps:float -> float -> float -> bool
