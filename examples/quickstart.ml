(* Quickstart: build a 2x2 coordination game, run the logit dynamics,
   and verify convergence to the Gibbs stationary distribution.

   Run with: dune exec examples/quickstart.exe *)

let () =
  (* A coordination game where (0,0) is risk dominant (delta0 > delta1). *)
  let basic = Games.Coordination.of_deltas ~delta0:1.0 ~delta1:0.5 in
  let game = Games.Coordination.to_game basic in
  let beta = 2.0 in

  Printf.printf "Game: %s, beta = %g\n" (Games.Game.name game) beta;
  Printf.printf "Pure Nash equilibria (profile indices): %s\n"
    (String.concat ", "
       (List.map string_of_int (Games.Game.pure_nash_profiles game)));

  (* The game is an exact potential game; the logit chain is reversible
     with the Gibbs measure as stationary distribution. *)
  let phi =
    match Games.Potential.recover game with
    | Some phi -> phi
    | None -> failwith "coordination games are potential games"
  in
  let space = Games.Game.space game in
  let pi = Logit.Gibbs.stationary space phi ~beta in
  Printf.printf "\nStationary (Gibbs) distribution:\n";
  Games.Strategy_space.iter space (fun idx ->
      let profile = Games.Strategy_space.decode space idx in
      Printf.printf "  pi%s = %.4f   (Phi = %+.2f)\n"
        (Format.asprintf "%a" Games.Strategy_space.pp_profile profile)
        pi.(idx) (phi idx));

  (* Exact mixing time of the chain. *)
  let chain = Logit.Logit_dynamics.chain game ~beta in
  (match Markov.Mixing.mixing_time_all chain pi with
  | Some t -> Printf.printf "\nExact mixing time t_mix(1/4) = %d steps\n" t
  | None -> assert false);

  (* Simulate a trajectory and check the long-run occupancy against pi. *)
  let rng = Prob.Rng.create 7 in
  let occupancy =
    Logit.Dynamics.occupancy rng game ~beta ~start:0 ~burn_in:1_000
      ~samples:20_000 ~thin:5
  in
  let tv = Prob.Empirical.tv_against occupancy (Prob.Dist.of_weights pi) in
  Printf.printf
    "Empirical occupancy after burn-in vs Gibbs: TV = %.4f (sampling noise)\n" tv;

  (* The theorem-34 upper bound for this game. *)
  let bound =
    Logit.Bounds.thm34_tmix_upper ~n:2 ~m:2 ~beta
      ~delta_phi:(Games.Potential.delta_global space phi)
      ()
  in
  Printf.printf "Theorem 3.4 upper bound: %.1f steps\n" bound
