(** Dominance solvability — iterated elimination of strictly dominated
    strategies.

    The paper's Section 4 closes by noting that the β-independence
    result extends beyond dominant-strategy games to max-solvable
    games [Nisan–Schapira–Zohar 08] "with a much larger function"; as
    the closest fully-specified classical class we implement
    dominance-solvable games (iterated strict dominance by pure
    strategies, which contains every game with strictly dominant
    strategies) and the extension experiment EX1 measures the same
    mixing-time plateau on them. *)

(** [eliminate_once game alive] removes, for each player, the
    strategies in [alive.(i)] strictly dominated (on profiles drawn
    from [alive]) by another strategy in [alive.(i)]. Returns the new
    sets and whether anything was removed. Every [alive.(i)] must be a
    non-empty sorted subset of the player's strategies. *)
val eliminate_once : Game.t -> int list array -> int list array * bool

(** [surviving_strategies game] iterates elimination to a fixed point,
    starting from the full strategy sets. *)
val surviving_strategies : Game.t -> int list array

(** [is_dominance_solvable game] tests whether iterated strict
    dominance leaves exactly one strategy per player. *)
val is_dominance_solvable : Game.t -> bool

(** [solution game] is the surviving profile of a dominance-solvable
    game, [None] otherwise. The profile is a PNE. *)
val solution : Game.t -> int option

(** [second_price_auction ~bidders ~valuations ~bids] builds a sealed-bid
    second-price auction as a strategic game: player [i]'s strategy [s]
    bids [bids.(s)], the highest bidder (lowest index breaks ties) wins
    and pays the second-highest bid; her utility is
    [valuations.(i) - price]. Truthful bidding is weakly dominant — a
    standard dominance-solvable-style example for EX1. *)
val second_price_auction :
  bidders:int -> valuations:float array -> bids:float array -> Game.t
