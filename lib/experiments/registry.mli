(** The experiment registry: one entry per theorem-experiment of
    DESIGN.md / EXPERIMENTS.md. *)

type t = {
  id : string;  (** short handle, e.g. ["e3"] *)
  theorem : string;  (** the theorem(s) reproduced *)
  title : string;
  run : quick:bool -> Table.t list;
      (** produce the result tables; [quick] shrinks sweeps for CI *)
}

(** The core reproduction experiments, in order E1..E9. *)
val all : t list

(** Extension experiments (X1..X5): the paper's remarks, related-work
    comparisons, and proof-internal quantities. *)
val extensions : t list

(** [find id] looks an experiment up by its handle (case-insensitive).
    Raises [Not_found]. *)
val find : string -> t

(** [run_one ?store ~quick e] prints [e]'s section header and tables.
    With [?store], the experiment's table list is checkpointed through
    the artifact store ({!Sweep.map_cached}): a prior completed run is
    decoded and printed without recomputing anything. *)
val run_one : ?store:Store.Cas.t -> quick:bool -> t -> unit

(** [run_all ?store ~quick ()] runs every core and extension experiment
    and prints the tables to stdout. With [?store] the grid is
    resumable: experiments completed by an interrupted earlier run are
    served from the store, so [logitdyn experiment all] is an
    incremental computation. *)
val run_all : ?store:Store.Cas.t -> quick:bool -> unit -> unit
