(** Exact ring equilibria at any size via transfer matrices.

    For a homogeneous game on the n-ring whose potential is a sum of
    edge potentials φ(a, b) over m strategies, the Gibbs partition
    function is Z_β = Tr(Tⁿ) with T(a, b) = e^{-βφ(a, b)}. Powers of
    the m×m transfer matrix replace the 2ⁿ-state enumeration, so
    stationary observables (log-partition, per-edge potential, pair
    marginals, magnetisation for the Ising case) are exact for rings
    of thousands of players — far beyond what the chain-based tools
    can enumerate. Validated against direct Gibbs enumeration for
    small n in the test suite. *)

type t

(** [create ~strategies ~beta phi] builds the transfer matrix for the
    edge potential [phi a b]; requires [strategies >= 1], [beta >= 0]
    and a symmetric [phi] (checked; the ring's Gibbs measure needs
    φ(a,b) = φ(b,a) for T to be symmetric and the formulas below
    exact). Entries are scaled internally so that arbitrarily large β
    cannot overflow. *)
val create : strategies:int -> beta:float -> (int -> int -> float) -> t

(** [log_partition t ~n] is log Z_β for the n-ring, [n >= 3]. *)
val log_partition : t -> n:int -> float

(** [pair_marginal t ~n] is the matrix M with M(a, b) = the stationary
    probability that a fixed edge has endpoint strategies (a, b). *)
val pair_marginal : t -> n:int -> Linalg.Mat.t

(** [expected_edge_potential t ~n] is E_π[φ(x_i, x_{i+1})] — by
    symmetry the expected potential of the whole ring divided by n. *)
val expected_edge_potential : t -> n:int -> float

(** [site_marginal t ~n] is the stationary distribution of one site's
    strategy. *)
val site_marginal : t -> n:int -> float array

(** [correlation_length t] is -1/log(λ₂/λ₁) of the transfer matrix —
    the decay scale of strategy correlations along the ring ([infinity]
    if degenerate). *)
val correlation_length : t -> float
