(* logitdyn — command-line front end.

   Subcommands:
     simulate    run a logit-dynamics trajectory on a named game
     mixing      compute the exact mixing time of a named game
     spectrum    print the spectrum of the logit chain
     experiment  run a reproduction experiment (e1..e9, x1..x10, all)
     list        list available games and experiments
     zeta        potential-barrier quantities of a game
     cutwidth    cutwidth of a topology (Thm 5.1 exponent)
     hitting     expected hitting time of the potential minimum
     anneal      compare annealing schedules
     sample      exact stationary samples via coupling from the past
     chain       pack/inspect out-of-core chain segments
     store       inspect/maintain the on-disk artifact store
     bench       performance trajectory (history, regression gate, ingest)

   The chain-building subcommands (mixing, spectrum, hitting,
   experiment) memoise their heavy artifacts — chains, stationary
   distributions, experiment tables — through the content-addressed
   store (~/.cache/logitdyn, or --store DIR); --no-cache opts out. *)

open Cmdliner
module P = Serve.Protocol

let find_game id =
  match Serve.Catalog.find id with
  | Some g -> g
  | None ->
      Printf.eprintf "unknown game %S; try `logitdyn list`\n" id;
      exit 2

(* [with_jobs jobs f] runs [f] with [Some pool] of [jobs] domains (and
   guaranteed shutdown), or with [None] for jobs <= 1. *)
let with_jobs jobs f =
  if jobs <= 1 then f None
  else Exec.Pool.with_pool ~domains:jobs (fun pool -> f (Some pool))

(* --- the artifact store ------------------------------------------------ *)

(* Every occurrence of --store / --no-cache is collected and resolved
   here: duplicates or the conflicting pair are hard usage errors
   (exit 2), not silent last-one-wins. *)
let resolve_store_or_exit ~stores ~no_cache_flags =
  match
    Serve.Cli_flags.resolve_store ~stores
      ~no_cache_count:(List.length no_cache_flags)
  with
  | Ok choice -> choice
  | Error msg ->
      Printf.eprintf "logitdyn: %s\n" msg;
      exit 2

let open_store ~stores ~no_cache_flags =
  let choice = resolve_store_or_exit ~stores ~no_cache_flags in
  if choice.Serve.Cli_flags.no_cache then None
  else
    match Store.Cas.open_ ?dir:choice.Serve.Cli_flags.dir () with
    | cas -> Some cas
    | exception Sys_error msg ->
        Printf.eprintf "warning: artifact store unavailable (%s); running uncached\n"
          msg;
        None

let report_store = function
  | None -> ()
  | Some cas ->
      let s = Store.Cas.stats cas in
      Printf.printf "store: %d hit(s), %d miss(es), %d write(s) in %s\n"
        s.Store.Cas.hits s.Store.Cas.misses s.Store.Cas.writes (Store.Cas.dir cas)

(* [entry_or_exit engine ~game ~n ~beta] is the engine's cached chain
   entry, exiting 2 with the engine's message (unknown game, oversized
   state space) on failure — the CLI's historical behaviour. *)
let entry_or_exit engine ~game ~n ~beta =
  match Serve.Engine.entry engine ~game ~n ~beta with
  | Ok e -> e
  | Error msg ->
      Printf.eprintf "%s\n" msg;
      exit 2

let print_query_error err =
  (match err with
  | P.Overloaded -> Printf.eprintf "server overloaded\n"
  | P.Deadline_exceeded -> Printf.eprintf "deadline exceeded\n"
  | P.Bad_request msg -> Printf.eprintf "%s\n" msg
  | P.Server_error msg -> Printf.eprintf "error: %s\n" msg);
  exit 2

(* --- simulate --------------------------------------------------------- *)

let simulate game_id n beta steps seed =
  let spec = find_game game_id in
  let game, potential = spec.Serve.Catalog.build ~n ~beta in
  let rng = Prob.Rng.create seed in
  let space = Games.Game.space game in
  let traj = Logit.Logit_dynamics.trajectory rng game ~beta ~start:0 ~steps in
  Printf.printf "# %s, n=%d, beta=%g, %d steps (showing every %d)\n"
    (Games.Game.name game) n beta steps
    (Int.max 1 (steps / 20));
  let stride = Int.max 1 (steps / 20) in
  Array.iteri
    (fun t idx ->
      if t mod stride = 0 then begin
        let profile = Games.Strategy_space.decode space idx in
        let phi_cell =
          match potential with
          | Some phi -> Printf.sprintf "  Phi=%8.3f" (phi idx)
          | None -> ""
        in
        Printf.printf "t=%6d  x=%s%s  welfare=%.3f\n" t
          (Format.asprintf "%a" Games.Strategy_space.pp_profile profile)
          phi_cell
          (Games.Game.social_welfare game idx)
      end)
    traj;
  0

(* --- mixing ----------------------------------------------------------- *)

(* Recipe key for a packed segment: every input that changes the bits
   — game, size, β, on-disk layout version — is a field, so a layout
   bump orphans old segments instead of misreading them. *)
let segment_key ~game ~n ~beta =
  Store.Key.v ~kind:"segment"
    [
      ("game", game);
      ("n", string_of_int n);
      ("beta", Store.Key.float_field beta);
      ("layout", string_of_int Ooc.Segment.layout_version);
    ]

(* The out-of-core mixing path: stream the chain from (or to) a
   segment file instead of materialising it, lifting the in-RAM
   state-space ceiling. π comes from the power method and t_mix from
   the same panel sweep as the in-RAM path, both running over the
   segmented kernel — bit-identical results wherever both paths fit. *)
let mixing_ooc game_id n beta eps jobs segment_file stores no_cache_flags =
  let spec = find_game game_id in
  let game, _potential = spec.Serve.Catalog.build ~n ~beta in
  let size = Games.Game.size game in
  let store = open_store ~stores ~no_cache_flags in
  let tmp = ref None in
  let path =
    match segment_file with
    | Some p -> p
    | None -> (
        match store with
        | Some cas ->
            Store.Cas.segment_path cas (segment_key ~game:game_id ~n ~beta)
        | None ->
            let p =
              Filename.concat (Filename.get_temp_dir_name ())
                (Printf.sprintf "logitdyn-%d.seg" (Unix.getpid ()))
            in
            tmp := Some p;
            p)
  in
  if not (Sys.file_exists path) then begin
    let row i = Logit.Logit_dynamics.transition_row game ~beta i in
    let info = Ooc.Segment.pack ~path ~size ~row () in
    Printf.printf "packed %d state(s), %d transition(s) into %d block(s) (%d bytes)\n"
      info.Ooc.Segment.b_n info.b_nnz info.b_blocks info.b_bytes
  end;
  let finally () =
    match !tmp with
    | Some p -> ( try Sys.remove p with Sys_error _ -> ())
    | None -> ()
  in
  Fun.protect ~finally @@ fun () ->
  match Ooc.Segmented_chain.open_ path with
  | Error msg ->
      Printf.eprintf "cannot open segment %s: %s\n" path msg;
      exit 2
  | Ok sc ->
      Fun.protect ~finally:(fun () -> Ooc.Segmented_chain.close sc) @@ fun () ->
      if Ooc.Segmented_chain.size sc <> size then begin
        Printf.eprintf "segment %s holds %d state(s) but %s with n=%d has %d\n"
          path (Ooc.Segmented_chain.size sc) game_id n size;
        exit 2
      end;
      with_jobs jobs @@ fun pool ->
      let kernel = Ooc.Segmented_chain.kernel sc in
      let pi = Markov.Stationary.by_power_kernel ?pool kernel in
      let tmix =
        Markov.Mixing.mixing_time_kernel ?pool ~eps kernel pi ~starts:[ 0 ]
      in
      Printf.printf "game=%s n=%d |S|=%d beta=%g (out-of-core: %d block(s) in %s)\n"
        (Games.Game.name game) n size beta
        (Ooc.Segment.num_blocks (Ooc.Segmented_chain.segment sc))
        path;
      (match tmix with
      | Some t -> Printf.printf "t_mix(%g) = %d\n" eps t
      | None -> Printf.printf "t_mix(%g) > max_steps\n" eps);
      report_store store;
      0

(* The one per-point print block, shared by the single-β path and the
   --betas grid so a grid point's output is byte-identical to a
   separate --beta invocation at that value. *)
let print_mixing_reply engine ~game_id ~n ~beta ~eps ~replicas
    (m : P.mixing_reply) =
  let e = entry_or_exit engine ~game:game_id ~n ~beta in
  Printf.printf "game=%s n=%d |S|=%d beta=%g reversible=%b\n"
    (Games.Game.name e.Serve.Engine.game)
    n m.P.size beta m.P.reversible;
  (match m.P.tmix with
  | Some t -> Printf.printf "t_mix(%g) = %d\n" eps t
  | None -> Printf.printf "t_mix(%g) > max_steps\n" eps);
  (match m.P.empirical with
  | Some (steps, tv) ->
      Printf.printf "empirical TV at t=%d from start 0 (%d replicas): %.4f\n"
        steps replicas tv
  | None -> ());
  match m.P.barrier with
  | Some b ->
      Printf.printf "dPhi = %g, dphi(local) = %g, zeta = %g\n" b.P.d_global
        b.P.d_local b.P.zeta
  | None -> ()

(* A thin client of the shared request layer: the same Mixing query
   the daemon serves, evaluated in-process by the same engine, so the
   CLI's answers are bit-identical to logitdynd's by construction. *)
let mixing_in_ram game_id n beta eps jobs replicas seed stores no_cache_flags =
  let store = open_store ~stores ~no_cache_flags in
  with_jobs jobs @@ fun pool ->
  let engine = Serve.Engine.create ?pool ?store () in
  match
    Serve.Engine.eval engine
      (P.Mixing { game = game_id; n; beta; eps; replicas; seed })
  with
  | Error err -> print_query_error err
  | Ok (P.Mixing_r m) ->
      print_mixing_reply engine ~game_id ~n ~beta ~eps ~replicas m;
      report_store store;
      0
  | Ok _ ->
      Printf.eprintf "unexpected reply to a mixing query\n";
      exit 2

(* The --betas grid: one process, one engine, one scheduler batch. The
   whole grid goes through Serve.Scheduler.run_batch, whose (game, n)
   coalescing turns it into ONE Markov.Family driven by the fused
   multi-β panel sweep — each point's answer bit-identical to a
   separate --beta invocation (same primitives, same floats), printed
   in grid order with the same per-point block. Only the store report
   differs: one aggregated line at the end instead of one per
   invocation. *)
let mixing_grid game_id n betas eps jobs replicas seed stores no_cache_flags =
  let store = open_store ~stores ~no_cache_flags in
  with_jobs jobs @@ fun pool ->
  let engine = Serve.Engine.create ?pool ?store () in
  let batch =
    List.mapi
      (fun i beta ->
        {
          Serve.Scheduler.tag = ();
          req_id = i;
          deadline_ns = None;
          query = P.Mixing { game = game_id; n; beta; eps; replicas; seed };
        })
      betas
  in
  let replies =
    Serve.Scheduler.run_batch engine (Serve.Scheduler.stats_zero ()) batch
  in
  List.iter
    (fun (job, outcome) ->
      let beta =
        match job.Serve.Scheduler.query with
        | P.Mixing { beta; _ } -> beta
        | _ -> assert false (* the batch holds only Mixing queries *)
      in
      match outcome with
      | Error err -> print_query_error err
      | Ok (P.Mixing_r m) ->
          print_mixing_reply engine ~game_id ~n ~beta ~eps ~replicas m
      | Ok _ ->
          Printf.eprintf "unexpected reply to a mixing query\n";
          exit 2)
    replies;
  report_store store;
  0

(* [--segment FILE] implies the out-of-core path; [--ooc] alone
   derives the file from the store (or a temp file under
   [--no-cache]). [--betas LO:HI:STEP] runs the whole grid in one
   process through the β-family scheduler path; combining it with
   [--beta] or the out-of-core flags is a usage error (exit 2). *)
let mixing game_id n beta betas eps jobs replicas seed ooc segment_file stores
    no_cache_flags =
  match Serve.Cli_flags.resolve_betas ~beta ~betas with
  | Error msg ->
      Printf.eprintf "logitdyn: %s\n" msg;
      exit 2
  | Ok (Serve.Cli_flags.Beta_single beta) ->
      if ooc || segment_file <> None then
        mixing_ooc game_id n beta eps jobs segment_file stores no_cache_flags
      else mixing_in_ram game_id n beta eps jobs replicas seed stores no_cache_flags
  | Ok (Serve.Cli_flags.Beta_grid points) ->
      if ooc || segment_file <> None then begin
        Printf.eprintf
          "logitdyn: --betas is incompatible with --ooc/--segment (the grid \
           path is in-RAM)\n";
        exit 2
      end
      else mixing_grid game_id n points eps jobs replicas seed stores no_cache_flags

(* --- spectrum --------------------------------------------------------- *)

let spectrum game_id n beta count stores no_cache_flags =
  let store = open_store ~stores ~no_cache_flags in
  let engine = Serve.Engine.create ?store () in
  let e = entry_or_exit engine ~game:game_id ~n ~beta in
  let size = Games.Game.size e.Serve.Engine.game in
  if size > 2048 then begin
    Printf.eprintf "state space too large (%d) for dense spectra; reduce n\n" size;
    exit 2
  end;
  let chain = e.Serve.Engine.chain and pi = e.Serve.Engine.pi in
  if e.Serve.Engine.reversible then begin
    let values = Markov.Spectral.spectrum chain pi in
    Printf.printf "reversible chain; top eigenvalues:\n";
    Array.iteri
      (fun i v -> if i < count then Printf.printf "  lambda_%d = %.8f\n" (i + 1) v)
      values;
    Printf.printf "relaxation time = %.4f\n"
      (Markov.Spectral.relaxation_time chain pi)
  end
  else begin
    let values = Linalg.Eigen.general_spectrum (Markov.Chain.to_dense chain) in
    Printf.printf "non-reversible chain; top eigenvalues (re, im):\n";
    Array.iteri
      (fun i (re, im) ->
        if i < count then Printf.printf "  lambda_%d = %.8f %+.8fi\n" (i + 1) re im)
      values
  end;
  report_store store;
  0

(* --- experiment -------------------------------------------------------- *)

let experiment id quick jobs stores no_cache_flags =
  Experiments.Sweep.set_jobs jobs;
  let store = open_store ~stores ~no_cache_flags in
  if String.lowercase_ascii id = "all" then begin
    Experiments.Registry.run_all ?store ~quick ();
    report_store store;
    0
  end
  else
    match Experiments.Registry.find id with
    | e ->
        Experiments.Registry.run_one ?store ~quick e;
        report_store store;
        0
    | exception Not_found ->
        Printf.eprintf "unknown experiment %S; try `logitdyn list`\n" id;
        exit 2

(* --- zeta --------------------------------------------------------------- *)

let zeta game_id n =
  let spec = find_game game_id in
  let game, potential = spec.Serve.Catalog.build ~n ~beta:1.0 in
  match potential with
  | None ->
      Printf.eprintf "game %S is not a potential game; zeta is undefined\n" game_id;
      exit 2
  | Some phi ->
      let space = Games.Game.space game in
      if Games.Strategy_space.size space > 1 lsl 20 then begin
        Printf.eprintf "state space too large; reduce n\n";
        exit 2
      end;
      Printf.printf "game=%s n=%d\n" (Games.Game.name game) n;
      Printf.printf "dPhi (global variation) = %g\n"
        (Games.Potential.delta_global space phi);
      Printf.printf "dphi (local variation)  = %g\n"
        (Games.Potential.delta_local space phi);
      Printf.printf "zeta (barrier)          = %g\n" (Logit.Barrier.zeta space phi);
      Printf.printf
        "Thms 3.8/3.9: log t_mix ~ beta * zeta for large beta; Thm 3.4 bound \
         exponent is beta * dPhi.\n";
      0

(* --- cutwidth ------------------------------------------------------------ *)

let cutwidth_cmd_impl kind n =
  let graph =
    match kind with
    | "ring" -> Graphs.Generators.ring n
    | "path" -> Graphs.Generators.path n
    | "clique" -> Graphs.Generators.clique n
    | "star" -> Graphs.Generators.star n
    | "tree" -> Graphs.Generators.binary_tree n
    | "grid" -> Graphs.Generators.grid 2 (n / 2)
    | other ->
        Printf.eprintf "unknown graph kind %S\n" other;
        exit 2
  in
  if n <= 20 then begin
    let chi, order = Graphs.Cutwidth.exact_with_ordering graph in
    Printf.printf "%s(%d): cutwidth = %d (exact)\n" kind n chi;
    Printf.printf "optimal ordering: %s\n"
      (String.concat " " (Array.to_list (Array.map string_of_int order)))
  end
  else
    Printf.printf "%s(%d): cutwidth <= %d (local-search upper bound)\n" kind n
      (Graphs.Cutwidth.heuristic graph);
  0

(* --- hitting -------------------------------------------------------------- *)

let hitting game_id n beta jobs stores no_cache_flags =
  let store = open_store ~stores ~no_cache_flags in
  with_jobs jobs @@ fun pool ->
  let engine = Serve.Engine.create ?pool ?store () in
  match Serve.Engine.eval engine (P.Hitting { game = game_id; n; beta }) with
  | Error err -> print_query_error err
  | Ok (P.Hitting_r h) ->
      let e = entry_or_exit engine ~game:game_id ~n ~beta in
      Printf.printf "game=%s n=%d beta=%g\n"
        (Games.Game.name e.Serve.Engine.game)
        n beta;
      Printf.printf "potential minimiser: profile %d (Phi = %g)\n" h.P.argmin
        h.P.phi_min;
      Printf.printf "worst-case expected hitting time of the minimum: %.4g\n"
        h.P.worst_hitting;
      (match h.P.hit_tmix with
      | Some t ->
          Printf.printf "mixing time (same chain):                  %d\n" t
      | None -> Printf.printf "mixing time (same chain):                  >2e6\n");
      report_store store;
      0
  | Ok _ ->
      Printf.eprintf "unexpected reply to a hitting query\n";
      exit 2

(* --- anneal --------------------------------------------------------------- *)

let anneal game_id n steps seed =
  let spec = find_game game_id in
  let game, potential = spec.Serve.Catalog.build ~n ~beta:1.0 in
  match potential with
  | None ->
      Printf.eprintf "annealing quality is measured on the potential; %S has none\n"
        game_id;
      exit 2
  | Some phi ->
      let rng = Prob.Rng.create seed in
      Printf.printf "game=%s n=%d, %d steps per run, 200 replicas\n"
        (Games.Game.name game) n steps;
      Printf.printf "%-28s  %14s\n" "schedule" "mean final Phi";
      List.iter
        (fun schedule ->
          let quality =
            Logit.Annealing.final_potential rng game phi schedule ~start:0
              ~steps ~replicas:200
          in
          Printf.printf "%-28s  %14.4f\n"
            (Format.asprintf "%a" Logit.Annealing.pp_schedule schedule)
            quality)
        [
          Logit.Annealing.Constant 0.2;
          Logit.Annealing.Constant 5.0;
          Logit.Annealing.Linear { start = 0.; rate = 5. /. float_of_int steps };
          Logit.Annealing.Logarithmic { scale = 1. };
        ];
      0

(* --- sample (CFTP) -------------------------------------------------------- *)

let sample_cmd_impl game_id n beta count seed =
  let spec = find_game game_id in
  let game, potential = spec.Serve.Catalog.build ~n ~beta in
  let space = Games.Game.space game in
  let binary =
    List.init (Games.Strategy_space.num_players space) (fun i ->
        Games.Strategy_space.num_strategies space i)
    |> List.for_all (( = ) 2)
  in
  if not binary then begin
    Printf.eprintf "CFTP requires binary strategies; %S has more\n" game_id;
    exit 2
  end;
  let rng = Prob.Rng.create seed in
  Printf.printf
    "# %d exact stationary samples (coupling from the past), beta=%g\n"
    count beta;
  let emp = Prob.Empirical.create (Games.Game.size game) in
  let max_window = ref 0 in
  for k = 1 to count do
    let x, window = Logit.Perfect_sampling.coalescence_epoch rng game ~beta in
    Prob.Empirical.add emp x;
    if window > !max_window then max_window := window;
    if k <= 10 then
      Printf.printf "sample %2d: %s  (window %d)\n" k
        (Format.asprintf "%a" Games.Strategy_space.pp_profile
           (Games.Strategy_space.decode space x))
        window
  done;
  Printf.printf "max backward window: %d steps\n" !max_window;
  (match potential with
  | Some phi when Games.Game.size game <= 1 lsl 16 ->
      let pi = Logit.Gibbs.stationary space phi ~beta in
      Printf.printf "TV(empirical, exact Gibbs) = %.4f over %d samples\n"
        (Prob.Empirical.tv_against emp (Prob.Dist.of_weights pi))
        count
  | _ -> ());
  0

(* --- chain (out-of-core segments) ---------------------------------------- *)

let chain_pack game_id n beta out block_nnz stores no_cache_flags =
  let spec = find_game game_id in
  let game, _potential = spec.Serve.Catalog.build ~n ~beta in
  let size = Games.Game.size game in
  let path =
    match out with
    | Some p -> p
    | None -> (
        match open_store ~stores ~no_cache_flags with
        | Some cas ->
            Store.Cas.segment_path cas (segment_key ~game:game_id ~n ~beta)
        | None ->
            Printf.eprintf
              "chain pack: no --out given and the artifact store is disabled\n";
            exit 2)
  in
  let row i = Logit.Logit_dynamics.transition_row game ~beta i in
  let info = Ooc.Segment.pack ?block_nnz ~path ~size ~row () in
  Printf.printf "packed %s\n" path;
  Printf.printf "states=%d transitions=%d blocks=%d bytes=%d layout=v%d\n"
    info.Ooc.Segment.b_n info.b_nnz info.b_blocks info.b_bytes
    Ooc.Segment.layout_version;
  0

(* Info and verify open in stream mode: header-only validation, no
   mapping — cheap even on multi-gigabyte segments. *)
let chain_info file =
  match Ooc.Segment.open_ ~access:Ooc.Segment.Stream file with
  | Error msg ->
      Printf.eprintf "%s: %s\n" file msg;
      exit 2
  | Ok seg ->
      Fun.protect ~finally:(fun () -> Ooc.Segment.close seg) @@ fun () ->
      Printf.printf "%s\n" file;
      Printf.printf "states=%d transitions=%d blocks=%d bytes=%d layout=v%d\n"
        (Ooc.Segment.size seg) (Ooc.Segment.nnz seg)
        (Ooc.Segment.num_blocks seg)
        (Ooc.Segment.file_bytes seg)
        Ooc.Segment.layout_version;
      0

let chain_verify file =
  match Ooc.Segment.open_ ~access:Ooc.Segment.Stream file with
  | Error msg ->
      Printf.eprintf "%s: %s\n" file msg;
      exit 2
  | Ok seg -> (
      Fun.protect ~finally:(fun () -> Ooc.Segment.close seg) @@ fun () ->
      match Ooc.Segment.verify seg with
      | Ok () ->
          Printf.printf "%s: %d block(s) OK\n" file (Ooc.Segment.num_blocks seg);
          0
      | Error msgs ->
          List.iter (fun m -> Printf.printf "CORRUPT %s\n" m) msgs;
          Printf.printf "%s: %d corrupt block(s) of %d\n" file (List.length msgs)
            (Ooc.Segment.num_blocks seg);
          1)

(* --- store -------------------------------------------------------------- *)

let human_age seconds =
  if seconds < 90. then Printf.sprintf "%.0fs" seconds
  else if seconds < 5400. then Printf.sprintf "%.0fm" (seconds /. 60.)
  else if seconds < 129600. then Printf.sprintf "%.1fh" (seconds /. 3600.)
  else Printf.sprintf "%.1fd" (seconds /. 86400.)

let store_cmd_impl action stores max_age_days max_bytes =
  let choice = resolve_store_or_exit ~stores ~no_cache_flags:[] in
  match Store.Cas.open_ ?dir:choice.Serve.Cli_flags.dir () with
  | exception Sys_error msg ->
      Printf.eprintf "cannot open artifact store: %s\n" msg;
      exit 2
  | cas -> (
      match action with
      | "ls" ->
          (* Ages are wall-clock mtime differences, not durations. *)
          let now = Common.Clock.wall_s () in
          let entries = Store.Cas.verify cas in
          Printf.printf "%-32s  %-17s  %10s  %6s\n" "digest" "kind" "bytes" "age";
          List.iter
            (fun ((e : Store.Cas.entry), status) ->
              let kind =
                match status with
                | Ok k -> Store.Codec.kind_name k
                | Error _ -> "CORRUPT"
              in
              Printf.printf "%-32s  %-17s  %10d  %6s\n" e.digest kind e.size
                (human_age (now -. e.mtime)))
            entries;
          let total =
            List.fold_left
              (fun acc ((e : Store.Cas.entry), _) -> acc + e.size)
              0 entries
          in
          Printf.printf "%d object(s), %d byte(s) in %s\n" (List.length entries)
            total (Store.Cas.dir cas);
          0
      | "verify" ->
          let entries = Store.Cas.verify cas in
          let bad =
            List.filter (fun (_, status) -> Result.is_error status) entries
          in
          List.iter
            (fun ((e : Store.Cas.entry), status) ->
              match status with
              | Ok _ -> ()
              | Error reason -> Printf.printf "CORRUPT %s: %s\n" e.digest reason)
            bad;
          Printf.printf "%d object(s) checked, %d corrupt\n"
            (List.length entries) (List.length bad);
          if List.length bad = 0 then 0 else 1
      | "gc" ->
          let removed, bytes =
            Store.Cas.gc ?max_bytes cas ~older_than:(max_age_days *. 86400.)
          in
          let cap_note =
            match max_bytes with
            | None -> ""
            | Some cap -> Printf.sprintf ", capped the rest at %d byte(s)" cap
          in
          Printf.printf "gc: removed %d object(s), %d byte(s) older than %g day(s)%s\n"
            removed bytes max_age_days cap_note;
          0
      | "clear" ->
          let removed = Store.Cas.clear cas in
          Printf.printf "cleared %d object(s) from %s\n" removed (Store.Cas.dir cas);
          0
      | other ->
          Printf.eprintf "unknown store action %S (expected ls|gc|verify|clear)\n"
            other;
          exit 2)

(* --- bench -------------------------------------------------------------- *)

let bench_history_path_arg =
  Arg.(
    value
    & opt string Bench.History.default_path
    & info [ "history" ] ~docv:"FILE" ~doc:"Trajectory file to operate on.")

let bench_cmd =
  let history_cmd =
    Cmd.v
      (Cmd.info "history" ~doc:"Print the performance trajectory")
      Term.(
        const (fun path -> Bench.Cli.history ~path ()) $ bench_history_path_arg)
  in
  let compare_cmd =
    let baseline_arg =
      Arg.(
        required
        & opt (some string) None
        & info [ "baseline" ] ~docv:"FILE" ~doc:"Baseline trajectory file.")
    in
    let candidate_arg =
      Arg.(
        value
        & opt string Bench.History.default_path
        & info [ "candidate" ] ~docv:"FILE"
            ~doc:"Candidate trajectory file (default: the working tree's).")
    in
    let threshold_arg =
      Arg.(
        value
        & opt float Bench.Cli.default_threshold
        & info [ "threshold" ] ~docv:"PCT"
            ~doc:
              "Allowed slowdown in percent: an arm exactly $(docv) percent \
               slower than baseline still passes, strictly beyond fails.")
    in
    let strict_arg =
      Arg.(
        value & flag
        & info [ "strict" ]
            ~doc:"Also fail when a baseline workload disappears.")
    in
    Cmd.v
      (Cmd.info "compare"
         ~doc:"Gate the candidate trajectory against a baseline")
      Term.(
        const (fun strict threshold baseline candidate ->
            Bench.Cli.compare ~strict ~threshold ~baseline ~candidate ())
        $ strict_arg $ threshold_arg $ baseline_arg $ candidate_arg)
  in
  let ingest_cmd =
    let files_arg =
      Arg.(
        non_empty & pos_all string []
        & info [] ~docv:"FILE" ~doc:"Legacy BENCH snapshot files to migrate.")
    in
    Cmd.v
      (Cmd.info "ingest"
         ~doc:"Migrate legacy bench snapshots into the trajectory")
      Term.(
        const (fun path files -> Bench.Cli.ingest ~history_path:path files)
        $ bench_history_path_arg $ files_arg)
  in
  Cmd.group
    (Cmd.info "bench" ~doc:"Performance trajectory and regression gate")
    [ history_cmd; compare_cmd; ingest_cmd ]

(* --- list --------------------------------------------------------------- *)

let list_all () =
  Printf.printf "games:\n";
  List.iter
    (fun g ->
      Printf.printf "  %-18s %s\n" g.Serve.Catalog.id g.Serve.Catalog.doc)
    Serve.Catalog.all;
  Printf.printf "\nexperiments:\n";
  List.iter
    (fun e ->
      Printf.printf "  %-4s %-24s %s\n" e.Experiments.Registry.id
        e.Experiments.Registry.theorem e.Experiments.Registry.title)
    Experiments.Registry.all;
  0

(* --- cmdliner wiring ----------------------------------------------------- *)

let game_arg =
  Arg.(value & pos 0 string "ring" & info [] ~docv:"GAME" ~doc:"Game id (see list).")

let n_arg =
  Arg.(value & opt int 6 & info [ "n"; "players" ] ~docv:"N" ~doc:"Number of players.")

let beta_arg =
  Arg.(value & opt float 1.0 & info [ "b"; "beta" ] ~docv:"BETA" ~doc:"Inverse noise.")

let seed_arg = Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed.")

let steps_arg =
  Arg.(value & opt int 200 & info [ "steps" ] ~docv:"T" ~doc:"Trajectory length.")

let eps_arg =
  Arg.(value & opt float 0.25 & info [ "eps" ] ~docv:"EPS" ~doc:"TV threshold.")

let count_arg =
  Arg.(value & opt int 10 & info [ "top" ] ~docv:"K" ~doc:"Eigenvalues to print.")

let quick_arg =
  Arg.(value & flag & info [ "quick" ] ~doc:"Shrink experiment sweeps.")

let jobs_arg =
  Arg.(
    value & opt int 1
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Number of domains for the parallel kernels (1 = serial). Results \
           are identical for every value; only the wall-clock changes.")

(* Collected with opt_all/flag_all so duplicates and the conflicting
   pair surface as hard usage errors (via Serve.Cli_flags) instead of
   silent last-one-wins. *)
let store_dir_arg =
  Arg.(
    value & opt_all string []
    & info [ "store" ] ~docv:"DIR"
        ~doc:
          "Artifact store directory (default: \\$XDG_CACHE_HOME/logitdyn, \
           falling back to ~/.cache/logitdyn). Conflicts with --no-cache; \
           repeating it is an error.")

let no_cache_arg =
  Arg.(
    value & flag_all
    & info [ "no-cache" ]
        ~doc:
          "Disable the on-disk artifact store: compute everything afresh. \
           Conflicts with --store.")

let simulate_cmd =
  Cmd.v (Cmd.info "simulate" ~doc:"Simulate a logit-dynamics trajectory")
    Term.(const simulate $ game_arg $ n_arg $ beta_arg $ steps_arg $ seed_arg)

let mixing_cmd =
  let replicas_arg =
    Arg.(
      value & opt int 0
      & info [ "empirical" ] ~docv:"REPLICAS"
          ~doc:
            "Also estimate the TV distance at the computed mixing time by \
             Monte Carlo with $(docv) simulated chains (0 = skip).")
  in
  let ooc_arg =
    Arg.(
      value & flag
      & info [ "ooc" ]
          ~doc:
            "Stream the chain from an on-disk segment instead of holding it \
             in RAM — lifts the in-RAM state-space ceiling. Results are \
             bit-identical to the in-RAM path wherever both fit.")
  in
  let segment_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "segment" ] ~docv:"FILE"
          ~doc:
            "Segment file to stream from (implies --ooc); packed on demand \
             when absent. Default: derived from the game recipe in the \
             artifact store.")
  in
  let beta_opt_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "b"; "beta" ] ~docv:"BETA"
          ~doc:"Inverse noise (default 1.0). Conflicts with --betas.")
  in
  let betas_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "betas" ] ~docv:"LO:HI:STEP"
          ~doc:
            "Run a whole inclusive β grid in one process: the chains are \
             built as one β-family (utilities tabulated once, shared index \
             structure) and settled by one fused panel sweep. Each point's \
             output is byte-identical to a separate --beta run at that \
             value. Conflicts with --beta, --ooc and --segment.")
  in
  Cmd.v (Cmd.info "mixing" ~doc:"Compute the exact mixing time")
    Term.(
      const mixing $ game_arg $ n_arg $ beta_opt_arg $ betas_arg $ eps_arg
      $ jobs_arg $ replicas_arg $ seed_arg $ ooc_arg $ segment_arg
      $ store_dir_arg $ no_cache_arg)

let spectrum_cmd =
  Cmd.v (Cmd.info "spectrum" ~doc:"Print the spectrum of the logit chain")
    Term.(
      const spectrum $ game_arg $ n_arg $ beta_arg $ count_arg $ store_dir_arg
      $ no_cache_arg)

let experiment_cmd =
  let id_arg =
    Arg.(value & pos 0 string "all" & info [] ~docv:"ID" ~doc:"e1..e9 or all.")
  in
  Cmd.v (Cmd.info "experiment" ~doc:"Run a reproduction experiment")
    Term.(
      const experiment $ id_arg $ quick_arg $ jobs_arg $ store_dir_arg
      $ no_cache_arg)

let list_cmd =
  Cmd.v (Cmd.info "list" ~doc:"List available games and experiments")
    Term.(const list_all $ const ())

let zeta_cmd =
  Cmd.v (Cmd.info "zeta" ~doc:"Compute the potential barrier of a game")
    Term.(const zeta $ game_arg $ n_arg)

let cutwidth_cmd =
  let kind_arg =
    Arg.(value & pos 0 string "ring" & info [] ~docv:"GRAPH"
           ~doc:"ring|path|clique|star|tree|grid")
  in
  Cmd.v (Cmd.info "cutwidth" ~doc:"Cutwidth of a topology (Thm 5.1 exponent)")
    Term.(const cutwidth_cmd_impl $ kind_arg $ n_arg)

let hitting_cmd =
  Cmd.v
    (Cmd.info "hitting" ~doc:"Expected hitting time of the potential minimum")
    Term.(
      const hitting $ game_arg $ n_arg $ beta_arg $ jobs_arg $ store_dir_arg
      $ no_cache_arg)

let store_cmd =
  let action_arg =
    Arg.(
      value & pos 0 string "ls"
      & info [] ~docv:"ACTION" ~doc:"ls | gc | verify | clear")
  in
  let max_age_arg =
    Arg.(
      value & opt float 30.
      & info [ "max-age" ] ~docv:"DAYS"
          ~doc:"gc: delete objects last written more than $(docv) days ago.")
  in
  let max_bytes_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-bytes" ] ~docv:"BYTES"
          ~doc:
            "gc: after the age sweep, keep evicting least-recently-written \
             objects until at most $(docv) bytes remain.")
  in
  Cmd.v
    (Cmd.info "store" ~doc:"Inspect and maintain the on-disk artifact store")
    Term.(
      const store_cmd_impl $ action_arg $ store_dir_arg $ max_age_arg
      $ max_bytes_arg)

let chain_cmd =
  let file_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"FILE" ~doc:"Segment file.")
  in
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "out"; "o" ] ~docv:"FILE"
          ~doc:
            "Write the segment here. Default: the recipe-derived path inside \
             the artifact store.")
  in
  let block_nnz_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "block-nnz" ] ~docv:"K"
          ~doc:"Stored transitions per block (build memory and stream unit).")
  in
  let pack_cmd =
    Cmd.v
      (Cmd.info "pack"
         ~doc:"Stream a game's chain into an on-disk segment file")
      Term.(
        const chain_pack $ game_arg $ n_arg $ beta_arg $ out_arg
        $ block_nnz_arg $ store_dir_arg $ no_cache_arg)
  in
  let info_cmd =
    Cmd.v (Cmd.info "info" ~doc:"Print a segment file's header")
      Term.(const chain_info $ file_arg)
  in
  let verify_cmd =
    Cmd.v
      (Cmd.info "verify" ~doc:"Recompute every block CRC of a segment file")
      Term.(const chain_verify $ file_arg)
  in
  Cmd.group
    (Cmd.info "chain" ~doc:"Pack and inspect out-of-core chain segments")
    [ pack_cmd; info_cmd; verify_cmd ]

let sample_cmd =
  let count_arg =
    Arg.(value & opt int 1000 & info [ "count" ] ~docv:"K" ~doc:"Samples to draw.")
  in
  Cmd.v
    (Cmd.info "sample" ~doc:"Exact stationary samples via coupling from the past")
    Term.(const sample_cmd_impl $ game_arg $ n_arg $ beta_arg $ count_arg $ seed_arg)

let anneal_cmd =
  let anneal_steps =
    Arg.(value & opt int 2000 & info [ "steps" ] ~docv:"T" ~doc:"Steps per run.")
  in
  Cmd.v (Cmd.info "anneal" ~doc:"Compare annealing schedules on a game")
    Term.(const anneal $ game_arg $ n_arg $ anneal_steps $ seed_arg)

let () =
  let doc = "mixing-time toolkit for the logit dynamics of strategic games" in
  let info = Cmd.info "logitdyn" ~version:"1.0.0" ~doc in
  exit (Cmd.eval' (Cmd.group info
       [ simulate_cmd; mixing_cmd; spectrum_cmd; experiment_cmd; list_cmd;
         zeta_cmd; cutwidth_cmd; hitting_cmd; anneal_cmd; sample_cmd;
         chain_cmd; store_cmd; bench_cmd ]))
