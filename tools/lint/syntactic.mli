(** The syntactic pass: file discovery, Parsetree parsing, and a rule
    engine that drives every active rule's hooks from a single
    [Ast_iterator] traversal per file. *)

type kind = Ml | Mli

type source_ast =
  | Structure of Parsetree.structure
  | Signature of Parsetree.signature

(** A rule's per-file visitor. The engine calls each hook at every
    node of the shared traversal. *)
type hooks = {
  on_expr : Parsetree.expression -> unit;
  on_module_expr : Parsetree.module_expr -> unit;
  on_typ : Parsetree.core_type -> unit;
}

(** Hooks that do nothing — the base for [with]-style rule bodies. *)
val no_hooks : hooks

type check =
  | Ast_rule of (report:Lint.reporter -> hooks)
      (** instantiated once per file; runs in the shared walk *)
  | Tree_rule of (files:string list -> (string * string) list)
      (** whole-tree check; returns (file, message) pairs *)

type rule = {
  name : string;
  doc : string;
  applies : string -> bool;  (** relpath filter *)
  check : check;
}

(** Synthetic rule name for unparseable sources. Parse-error findings
    are never suppressable. *)
val parse_error_rule : string

val kind_of_path : string -> kind

(** [parse_ast kind path] — raises on I/O errors; parse and lex errors
    propagate as their own exceptions (callers map them to
    {!parse_error_rule} findings). *)
val parse_ast : kind -> string -> source_ast

(** [lint_file ~rules ~root ~relpath ()] runs every applicable AST
    rule over one file in a single traversal. Parse failures yield a
    single {!parse_error_rule} finding. *)
val lint_file :
  ?config:Lint.Config.t ->
  rules:rule list ->
  root:string ->
  relpath:string ->
  unit ->
  Lint.finding list

(** [discover ~root ~dirs] — every .ml/.mli under [dirs] (relative to
    [root]), skipping dot- and underscore-prefixed entries, sorted. *)
val discover : root:string -> dirs:string list -> string list

(** [run_pass ~root ~files ~config_for ~rules] — per-file rules over
    every file plus tree rules over the whole list. *)
val run_pass :
  root:string ->
  files:string list ->
  config_for:(string -> Lint.Config.t) ->
  rules:rule list ->
  Lint.finding list
