let flow_and_mass t pi subset =
  let n = Chain.size t in
  let mass = ref 0. and flow = ref 0. in
  for i = 0 to n - 1 do
    if subset i then begin
      mass := !mass +. pi.(i);
      Chain.iter_row t i (fun j p ->
          if not (subset j) then flow := !flow +. (pi.(i) *. p))
    end
  done;
  (!flow, !mass)

let ratio t pi subset =
  let flow, mass = flow_and_mass t pi subset in
  if mass <= 0. then invalid_arg "Bottleneck.ratio: empty or null set";
  flow /. mass

let ratio_checked t pi subset =
  let flow, mass = flow_and_mass t pi subset in
  if mass <= 0. then invalid_arg "Bottleneck.ratio_checked: empty or null set";
  if mass > 0.5 +. 1e-12 then
    invalid_arg "Bottleneck.ratio_checked: pi(R) exceeds 1/2";
  flow /. mass

let lower_bound_tmix ?(eps = 0.25) ratio =
  if ratio <= 0. then invalid_arg "Bottleneck.lower_bound_tmix: non-positive ratio";
  if eps < 0. || eps >= 0.5 then invalid_arg "Bottleneck.lower_bound_tmix: bad eps";
  (1. -. (2. *. eps)) /. (2. *. ratio)

let best_sublevel_set t pi score =
  let n = Chain.size t in
  let thresholds =
    List.sort_uniq compare (List.init n score)
  in
  let best = ref None in
  List.iter
    (fun theta ->
      let subset i = score i <= theta in
      let flow, mass = flow_and_mass t pi subset in
      if mass > 0. && mass <= 0.5 +. 1e-12 then begin
        let b = flow /. mass in
        match !best with
        | Some (b0, _) when b0 <= b -> ()
        | _ -> best := Some (b, theta)
      end)
    thresholds;
  match !best with
  | Some result -> result
  | None -> invalid_arg "Bottleneck.best_sublevel_set: no valid sublevel set"
