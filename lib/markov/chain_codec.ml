(* Chain artifacts: the CSR arrays serialise directly ([Chain.to_csr])
   under the Store.Codec frame; decode revalidates the whole invariant
   via [Chain.of_csr], so a tampered payload that slips past the CRC
   still can't become a garbage chain. *)

let layout_version = 2

let encode chain =
  let row_start, cols, probs = Chain.to_csr chain in
  Store.Codec.frame ~kind:Store.Codec.Chain (fun b ->
      Store.Codec.Enc.u32 b layout_version;
      Store.Codec.Enc.int_array b row_start;
      Store.Codec.Enc.int_array b cols;
      Store.Codec.Enc.float_array b probs)

let decode s =
  let payload =
    Store.Codec.unframe ~kind:Store.Codec.Chain s (fun d ->
        let v = Store.Codec.Dec.u32 d in
        if v <> layout_version then
          Store.Codec.Dec.fail
            (Printf.sprintf "chain layout version %d (this build reads %d)" v
               layout_version);
        let row_start = Store.Codec.Dec.int_array d in
        let cols = Store.Codec.Dec.int_array d in
        let probs = Store.Codec.Dec.float_array d in
        (row_start, cols, probs))
  in
  match payload with
  | Error _ as e -> e
  | Ok (row_start, cols, probs) -> (
      match Chain.of_csr ~row_start ~cols ~probs with
      | chain -> Ok chain
      | exception Invalid_argument msg -> Error ("invalid chain artifact: " ^ msg))

let recipe ?(extra = []) ~game ~size ~beta ~variant () =
  Store.Key.v ~kind:"chain"
    ([
       ("game", game);
       ("size", string_of_int size);
       ("beta", Store.Key.float_field beta);
       ("variant", variant);
       ("csr-layout", string_of_int layout_version);
       ("codec", string_of_int Store.Codec.version);
     ]
    @ extra)

let cached ?store key build =
  match store with
  | None -> build ()
  | Some cas -> (
      match Store.Cas.get_decoded cas key ~decode with
      | Some chain -> chain
      | None ->
          let chain = build () in
          Store.Cas.put cas key (encode chain);
          chain)
