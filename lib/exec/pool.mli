(** A reusable domain pool for data-parallel kernels.

    The pool owns [domains - 1] long-lived worker domains (OCaml 5
    [Domain.t]) plus the calling domain, which always participates in
    the work, so a pool of size 1 never spawns anything and degenerates
    to the serial loop. Work is distributed by chunked
    self-scheduling: every participant repeatedly claims the next
    [chunk] indices from a shared atomic counter, so load imbalance
    between rows/starts/replicas is absorbed without any static
    partitioning. While waiting for its helpers, the submitting domain
    drains other queued tasks, which makes nested [parallel_for] calls
    safe (they serialize instead of deadlocking).

    Determinism contract: [parallel_for] writes to disjoint slots, so
    any pure body produces results identical to the serial loop
    regardless of pool size; [reduce] combines per-chunk partials in
    chunk order with a chunk size that depends only on [n] (never on
    the pool size), so floating-point reductions are reproducible
    across pool sizes — though associated differently from a
    straight-line serial fold. *)

type t

(** [create ?domains ()] spawns a pool of [domains] total participants
    (the caller plus [domains - 1] workers). Defaults to
    [Domain.recommended_domain_count ()]. Raises [Invalid_argument] if
    [domains < 1]. *)
val create : ?domains:int -> unit -> t

(** [size t] is the total number of participating domains (>= 1). *)
val size : t -> int

(** [dispatches t] counts the [parallel_for]/[map] calls on [t] that
    actually enqueued work for the worker domains (inline runs — pool
    size 1, or a range no larger than one chunk — don't count). Exposed
    so tests can assert that a kernel below the serial cutover never
    touched the pool. *)
val dispatches : t -> int

(** The default work threshold below which pooled kernels run their
    serial loop instead of dispatching: 65536 work units, where one
    unit is roughly one inner-loop iteration (a fused multiply-add, a
    hash probe), i.e. tens of microseconds of serial work — an order
    of magnitude above the cost of waking the pool. *)
val default_serial_cutover : int

(** [serial_cutover ()] is the current cutover (process-global). *)
val serial_cutover : unit -> int

(** [set_serial_cutover n] replaces the cutover: [0] forces every
    pooled kernel to dispatch, [max_int] effectively serialises them
    all. For tests and unusual machines; raises [Invalid_argument] on a
    negative [n]. *)
val set_serial_cutover : int -> unit

(** [parallelize t ~cost ~n] is the dispatch decision every [?pool]
    kernel makes: true iff [t] has more than one domain and the
    estimated work [n * cost] (saturating) reaches the cutover.
    [cost] is the kernel's per-index work estimate in cutover units;
    raises [Invalid_argument] if negative. *)
val parallelize : t -> cost:int -> n:int -> bool

(** [shutdown t] terminates the worker domains and joins them.
    Idempotent; subsequent [parallel_for]/[map] calls on [t] raise. *)
val shutdown : t -> unit

(** [with_pool ?domains f] runs [f pool] and guarantees [shutdown]. *)
val with_pool : ?domains:int -> (t -> 'a) -> 'a

(** [parallel_for ?chunk t ~n body] runs [body i] for every
    [i] in [0 .. n-1], distributing chunks of [chunk] consecutive
    indices (default: [n] split eight ways per participant) across the
    pool. The call returns once every index has completed. The first
    exception raised by any [body] aborts the remaining chunks and is
    re-raised in the caller. Bodies for distinct indices must be safe
    to run concurrently. *)
val parallel_for : ?chunk:int -> t -> n:int -> (int -> unit) -> unit

(** [map ?chunk t ~n f] is [[| f 0; f 1; ...; f (n-1) |]] computed in
    parallel ([f 0] runs first, in the caller, to seed the result
    array). *)
val map : ?chunk:int -> t -> n:int -> (int -> 'a) -> 'a array

(** [reduce ?chunk t ~n ~map ~combine ~init] folds [combine] over
    [map 0 .. map (n-1)] by combining per-chunk partials in chunk
    order. [combine] must be associative; the chunking (and hence the
    association) depends only on [n] and [chunk], never on the pool
    size, so results are reproducible across pool sizes. Returns
    [init] when [n <= 0]. *)
val reduce :
  ?chunk:int -> t -> n:int -> map:(int -> 'a) -> combine:('a -> 'a -> 'a) ->
  init:'a -> 'a

(** [iter_opt ?cost pool ~n body] is [parallel_for] when [pool] is
    [Some _] and {!parallelize} approves the estimated work
    [n * cost], and the plain serial loop otherwise — the idiom behind
    every [?pool] parameter in the library. [cost] defaults to 1 (an
    index is one work unit), so small-[n] loops stay serial unless the
    caller declares heavier per-index work. *)
val iter_opt : ?cost:int -> t option -> n:int -> (int -> unit) -> unit

(** [init_opt ?cost pool ~n f] is [Array.init n f] (serial, ascending
    order) or [map pool ~n f], under the same cutover rule as
    {!iter_opt}. *)
val init_opt : ?cost:int -> t option -> n:int -> (int -> 'a) -> 'a array
