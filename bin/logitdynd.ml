(* logitdynd — the long-lived logit-dynamics query daemon.

   Subcommands:
     serve   bind a Unix-domain socket and answer queries until SIGTERM
     query   one-shot client: send a query, print the reply
     stats   print the server counters

   The server coalesces concurrent same-chain mixing queries — across
   clients — into one blocked-SpMM panel sweep per matrix traversal
   and keeps chains, stationary distributions and eigendecompositions
   warm (in memory, plus the on-disk artifact store shared with the
   logitdyn CLI). Answers are bit-identical to serial `logitdyn`
   runs. *)

open Cmdliner
module P = Serve.Protocol

let default_socket () =
  Filename.concat (Filename.get_temp_dir_name ()) "logitdynd.sock"

let resolve_store_or_exit ~stores ~no_cache_flags =
  match
    Serve.Cli_flags.resolve_store ~stores
      ~no_cache_count:(List.length no_cache_flags)
  with
  | Ok choice -> choice
  | Error msg ->
      Printf.eprintf "logitdynd: %s\n" msg;
      exit 2

let open_store (choice : Serve.Cli_flags.store_choice) =
  if choice.no_cache then None
  else
    match Store.Cas.open_ ?dir:choice.dir () with
    | cas -> Some cas
    | exception Sys_error msg ->
        Printf.eprintf
          "warning: artifact store unavailable (%s); running uncached\n" msg;
        None

let with_jobs jobs f =
  if jobs <= 1 then f None
  else Exec.Pool.with_pool ~domains:jobs (fun pool -> f (Some pool))

(* --- serve -------------------------------------------------------------- *)

let serve_impl socket jobs stores no_cache_flags max_queue max_clients
    spectral_cutoff max_steps =
  let choice = resolve_store_or_exit ~stores ~no_cache_flags in
  let store = open_store choice in
  with_jobs jobs @@ fun pool ->
  let engine =
    Serve.Engine.create ?pool ?store ~spectral_cutoff ~max_steps ()
  in
  let server =
    Serve.Server.create ~max_queue ~max_clients ~engine ~socket_path:socket ()
  in
  (* SIGTERM and SIGINT both drain: in-flight requests get their
     responses before the socket disappears. *)
  let graceful = Sys.Signal_handle (fun _ -> Serve.Server.stop server) in
  Sys.set_signal Sys.sigterm graceful;
  Sys.set_signal Sys.sigint graceful;
  (* Clients come and go; a write to a vanished one must surface as
     EPIPE on that fd, not kill the daemon. *)
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  Printf.printf "logitdynd: listening on %s (jobs=%d, max-queue=%d)\n" socket
    jobs max_queue;
  (* The parent (CI smoke job, bench harness) waits for this line
     before connecting. *)
  flush stdout;
  Serve.Server.serve_forever server;
  Printf.printf "logitdynd: drained, shut down cleanly\n";
  0

(* --- query -------------------------------------------------------------- *)

let print_error = function
  | P.Overloaded -> Printf.eprintf "server overloaded: request rejected\n"
  | P.Deadline_exceeded -> Printf.eprintf "deadline exceeded\n"
  | P.Bad_request msg -> Printf.eprintf "bad request: %s\n" msg
  | P.Server_error msg -> Printf.eprintf "server error: %s\n" msg

let print_reply = function
  | P.Mixing_r m ->
      Printf.printf "|S|=%d reversible=%b route=%s\n" m.P.size m.P.reversible
        (match m.P.route with P.Spectral -> "spectral" | P.Panel -> "panel");
      (match m.P.tmix with
      | Some t -> Printf.printf "t_mix = %d\n" t
      | None -> Printf.printf "t_mix > step budget\n");
      (match m.P.empirical with
      | Some (steps, tv) ->
          Printf.printf "empirical TV at t=%d: %.4f\n" steps tv
      | None -> ());
      (match m.P.barrier with
      | Some b ->
          Printf.printf "dPhi = %g, dphi(local) = %g, zeta = %g\n" b.P.d_global
            b.P.d_local b.P.zeta
      | None -> ())
  | P.Stationary_r pi ->
      Array.iteri (fun i p -> Printf.printf "pi[%d] = %.12g\n" i p) pi
  | P.Hitting_r h ->
      Printf.printf "potential minimiser: profile %d (Phi = %g)\n" h.P.argmin
        h.P.phi_min;
      Printf.printf "worst-case expected hitting time: %.4g\n" h.P.worst_hitting;
      (match h.P.hit_tmix with
      | Some t -> Printf.printf "mixing time (same chain): %d\n" t
      | None -> Printf.printf "mixing time (same chain): > step budget\n")
  | P.Simulate_r traj ->
      Array.iteri (fun t x -> Printf.printf "t=%d x=%d\n" t x) traj
  | P.Sample_r { samples; max_window } ->
      Array.iteri (fun k x -> Printf.printf "sample %d: %d\n" k x) samples;
      Printf.printf "max backward window: %d\n" max_window
  | P.Stats_r s ->
      Printf.printf "served=%d rejected=%d expired=%d failed=%d\n" s.P.served
        s.P.rejected s.P.expired s.P.failed;
      Printf.printf "batches=%d max_batch=%d panel_steps=%d queue_peak=%d\n"
        s.P.batches s.P.max_batch s.P.panel_steps s.P.queue_peak;
      Printf.printf "chain cache: %d hit(s), %d miss(es)\n" s.P.chain_cache_hits
        s.P.chain_cache_misses;
      Printf.printf "store: %d hit(s), %d miss(es)\n" s.P.store_hits
        s.P.store_misses

let run_query socket deadline_ms q =
  match Serve.Client.query ~socket_path:socket ?deadline_ms q with
  | Error msg ->
      Printf.eprintf "logitdynd: %s\n" msg;
      exit 1
  | Ok (Error err) ->
      print_error err;
      exit 1
  | Ok (Ok reply) ->
      print_reply reply;
      0

let query_impl socket kind game n beta eps steps count replicas seed deadline_ms
    =
  let q =
    match kind with
    | "mixing" -> P.Mixing { game; n; beta; eps; replicas; seed }
    | "stationary" -> P.Stationary { game; n; beta }
    | "hitting" -> P.Hitting { game; n; beta }
    | "simulate" -> P.Simulate { game; n; beta; steps; seed }
    | "sample" -> P.Sample { game; n; beta; count; seed }
    | "stats" -> P.Stats
    | other ->
        Printf.eprintf
          "logitdynd: unknown query %S (expected \
           mixing|stationary|hitting|simulate|sample|stats)\n"
          other;
        exit 2
  in
  run_query socket deadline_ms q

let stats_impl socket = run_query socket None P.Stats

(* --- cmdliner wiring ----------------------------------------------------- *)

let socket_arg =
  Arg.(
    value
    & opt string (default_socket ())
    & info [ "socket" ] ~docv:"PATH" ~doc:"Unix-domain socket path.")

let jobs_arg =
  Arg.(
    value & opt int 1
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:"Domains for the parallel kernels (1 = serial).")

let stores_arg =
  Arg.(
    value & opt_all string []
    & info [ "store" ] ~docv:"DIR"
        ~doc:
          "Artifact store directory (default: \\$XDG_CACHE_HOME/logitdyn). \
           Conflicts with --no-cache; repeating it is an error.")

let no_cache_arg =
  Arg.(
    value & flag_all
    & info [ "no-cache" ]
        ~doc:"Disable the on-disk artifact store. Conflicts with --store.")

let serve_cmd =
  let max_queue_arg =
    Arg.(
      value
      & opt int Serve.Server.default_max_queue
      & info [ "max-queue" ] ~docv:"N"
          ~doc:
            "Admission bound: requests beyond $(docv) queued in one loop \
             iteration are rejected as overloaded.")
  in
  let max_clients_arg =
    Arg.(
      value
      & opt int Serve.Server.default_max_clients
      & info [ "max-clients" ] ~docv:"N" ~doc:"Concurrent connection bound.")
  in
  let spectral_cutoff_arg =
    Arg.(
      value
      & opt int Serve.Engine.default_spectral_cutoff
      & info [ "spectral-cutoff" ] ~docv:"SIZE"
          ~doc:
            "Reversible chains up to $(docv) states answer mixing queries \
             through their eigendecomposition; larger ones run the panel \
             sweep (0 forces the panel route).")
  in
  let max_steps_arg =
    Arg.(
      value
      & opt int Serve.Engine.default_max_steps
      & info [ "max-steps" ] ~docv:"T" ~doc:"Panel-route step budget.")
  in
  Cmd.v
    (Cmd.info "serve" ~doc:"Run the query daemon until SIGTERM")
    Term.(
      const serve_impl $ socket_arg $ jobs_arg $ stores_arg $ no_cache_arg
      $ max_queue_arg $ max_clients_arg $ spectral_cutoff_arg $ max_steps_arg)

let query_cmd =
  let kind_arg =
    Arg.(
      value & pos 0 string "mixing"
      & info [] ~docv:"KIND"
          ~doc:"mixing | stationary | hitting | simulate | sample | stats")
  in
  let game_arg =
    Arg.(
      value & opt string "ring" & info [ "game" ] ~docv:"GAME" ~doc:"Game id.")
  in
  let n_arg =
    Arg.(
      value & opt int 6 & info [ "n"; "players" ] ~docv:"N" ~doc:"Players.")
  in
  let beta_arg =
    Arg.(value & opt float 1.0 & info [ "b"; "beta" ] ~docv:"BETA" ~doc:"Inverse noise.")
  in
  let eps_arg =
    Arg.(value & opt float 0.25 & info [ "eps" ] ~docv:"EPS" ~doc:"TV threshold.")
  in
  let steps_arg =
    Arg.(value & opt int 200 & info [ "steps" ] ~docv:"T" ~doc:"Trajectory length.")
  in
  let count_arg =
    Arg.(value & opt int 100 & info [ "count" ] ~docv:"K" ~doc:"Samples to draw.")
  in
  let replicas_arg =
    Arg.(
      value & opt int 0
      & info [ "empirical" ] ~docv:"REPLICAS"
          ~doc:"Monte-Carlo TV cross-check replicas (0 = skip).")
  in
  let seed_arg =
    Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed.")
  in
  let deadline_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "deadline-ms" ] ~docv:"MS"
          ~doc:"Per-request deadline in milliseconds.")
  in
  Cmd.v
    (Cmd.info "query" ~doc:"Send one query to a running daemon")
    Term.(
      const query_impl $ socket_arg $ kind_arg $ game_arg $ n_arg $ beta_arg
      $ eps_arg $ steps_arg $ count_arg $ replicas_arg $ seed_arg
      $ deadline_arg)

let stats_cmd =
  Cmd.v
    (Cmd.info "stats" ~doc:"Print the daemon's counters")
    Term.(const stats_impl $ socket_arg)

let () =
  let doc = "concurrent query daemon for the logit-dynamics toolkit" in
  let info = Cmd.info "logitdynd" ~version:"1.0.0" ~doc in
  exit (Cmd.eval' (Cmd.group info [ serve_cmd; query_cmd; stats_cmd ]))
