(** Spectral analysis of reversible chains.

    A reversible chain with stationary distribution π is similar to
    the symmetric matrix A = D^{1/2} P D^{-1/2} (D = diag π), so its
    spectrum is real and computable with the Jacobi solver. Theorem
    3.1 of the paper shows that for logit chains of potential games
    the whole spectrum is non-negative, hence λ★ = λ₂ and
    t_rel = 1/(1-λ₂). *)

(** [symmetrize t pi] is the dense symmetric matrix
    A = D^{1/2} P D^{-1/2}. Raises [Invalid_argument] when the chain
    is not reversible w.r.t. [pi] (the result would not be
    symmetric). *)
val symmetrize : Chain.t -> float array -> Linalg.Mat.t

(** [spectrum t pi] is the full (real) spectrum of a reversible chain
    in non-increasing order; [spectrum t pi).(0) = 1]. Dense O(n³). *)
val spectrum : Chain.t -> float array -> float array

(** [lambda2 t pi] is the second-largest eigenvalue, via deflated power
    iteration on the symmetrised operator (no dense matrix needed).
    Note this returns λ★ — the largest-in-absolute-value eigenvalue
    below 1 — which equals λ₂ whenever the spectrum is non-negative
    (Theorem 3.1). *)
val lambda2 : ?tol:float -> ?max_iter:int -> Chain.t -> float array -> float

(** [relaxation_time_of_gap gap] is 1/gap; raises on non-positive
    gap. *)
val relaxation_time_of_gap : float -> float

(** [relaxation_time t pi] is 1/(1-λ★) from the full spectrum:
    λ★ = max(λ₂, |λ_min|). *)
val relaxation_time : Chain.t -> float array -> float

(** [spectral_gap t pi] is 1 - λ★. *)
val spectral_gap : Chain.t -> float array -> float

(** [min_eigenvalue t pi] is the smallest eigenvalue — the quantity
    Theorem 3.1 proves non-negative for potential-game logit chains. *)
val min_eigenvalue : Chain.t -> float array -> float
