(** Potential functions of strategic games (paper, eq. (1)).

    A function Φ : S → ℝ is an (exact) potential for game G when for
    every player i, strategies a, b, and profile x,

    {v u_i(a, x₋ᵢ) - u_i(b, x₋ᵢ) = Φ(b, x₋ᵢ) - Φ(a, x₋ᵢ). v}

    With this sign convention the potential {e decreases} along
    improving moves and the stationary distribution of the logit
    dynamics is the Gibbs measure π(x) ∝ exp(-βΦ(x)). *)

(** [verify ?tol g phi] checks eq. (1) exhaustively over all Hamming
    edges of the profile space, up to absolute tolerance [tol]
    (default [1e-9]). *)
val verify : ?tol:float -> Game.t -> (int -> float) -> bool

(** [recover ?tol g] reconstructs a potential by integrating utility
    differences coordinate-by-coordinate from profile 0 (normalised so
    Φ(0) = 0), then verifies it. [None] if [g] is not an exact
    potential game. *)
val recover : ?tol:float -> Game.t -> (int -> float) option

(** [is_potential_game ?tol g] is [recover g <> None]. *)
val is_potential_game : ?tol:float -> Game.t -> bool

(** [common_interest ~name space phi] is the common-interest (identical
    payoff) game with u_i = -Φ for all players, whose exact potential
    is [phi]. This realises any prescribed potential as a game — the
    construction used by Theorems 3.5 and 4.3. *)
val common_interest : name:string -> Strategy_space.t -> (int -> float) -> Game.t

(** [tabulate space phi] precomputes [phi] on the whole space. *)
val tabulate : Strategy_space.t -> (int -> float) -> int -> float

(** [extrema space phi] is [(min, argmin, max, argmax)] over the
    space; the arg-extrema are the smallest attaining indices. *)
val extrema : Strategy_space.t -> (int -> float) -> float * int * float * int

(** [delta_global space phi] is ΔΦ = Φ_max - Φ_min. *)
val delta_global : Strategy_space.t -> (int -> float) -> float

(** [delta_local space phi] is δΦ = max over Hamming edges (x, y) of
    |Φ(x) - Φ(y)| (the paper's maximum local variation). *)
val delta_local : Strategy_space.t -> (int -> float) -> float

(** [global_minima space phi] lists all indices attaining Φ_min (the
    potential minimisers — for potential games these include all
    profiles of maximal stationary probability). *)
val global_minima : ?tol:float -> Strategy_space.t -> (int -> float) -> int list
