(** X10 (extension) — the update rule as an ablation.

    (a) Heat-bath (the paper's σ_i) vs Metropolis: both reversible
    w.r.t. the same Gibbs measure; Peskun's ordering predicts the
    Metropolis chain mixes at least as fast on binary fibers — we
    measure the constant (≈ 1.2-1.4×), confirming that every theorem
    in the paper speaks about the dynamics' structure, not about
    heat-bath-specific slowness.

    (b) Coupling from the past on attractive games: exact stationary
    samples with a per-sample backward-window certificate whose size
    tracks the mixing time (cheap on the ring, exponential on the
    clique — the paper's Section 5 contrast, now visible in an exact
    sampler's running time). *)

open Games

let part_a ~quick =
  let table =
    Table.create ~title:"X10a: heat-bath (paper) vs Metropolis mixing times"
      [
        ("game", Table.Left);
        ("beta", Table.Right);
        ("t_mix heat-bath", Table.Right);
        ("t_mix Metropolis", Table.Right);
        ("ratio", Table.Right);
      ]
  in
  let games =
    [
      Coordination.to_game (Coordination.of_deltas ~delta0:1.0 ~delta1:0.7);
      Graphical.to_game
        (Graphical.create
           (Graphs.Generators.ring (if quick then 4 else 6))
           (Coordination.of_deltas ~delta0:1.0 ~delta1:1.0));
      Congestion.to_game (Congestion.linear_routing ~players:4 ~links:2);
    ]
  in
  let betas = if quick then [ 1.0 ] else [ 0.5; 1.0; 2.0; 3.0 ] in
  List.iter
    (fun game ->
      let phi = Option.get (Potential.recover game) in
      let space = Game.space game in
      List.iter
        (fun beta ->
          let pi = Logit.Gibbs.stationary space phi ~beta in
          let t_hb =
            Markov.Mixing.mixing_time_all ~max_steps:2_000_000
              (Logit.Logit_dynamics.chain game ~beta)
              pi
          in
          let t_mh =
            Markov.Mixing.mixing_time_all ~max_steps:2_000_000
              (Logit.Metropolis.chain game ~beta)
              pi
          in
          Table.add_row table
            [
              Game.name game;
              Table.cell_float beta;
              Table.cell_opt_int t_hb;
              Table.cell_opt_int t_mh;
              (match (t_hb, t_mh) with
              | Some a, Some b when b > 0 ->
                  Table.cell_float (float_of_int a /. float_of_int b)
              | _ -> "-");
            ])
        betas)
    games;
  Table.add_note table
    "Peskun ordering: Metropolis >= heat-bath off-diagonal on binary \
     fibers, so ratio >= 1 up to integer rounding.";
  table

let part_b ~quick =
  let table =
    Table.create
      ~title:"X10b: coupling-from-the-past exact sampling (certificate = window)"
      [
        ("graph", Table.Left);
        ("beta", Table.Right);
        ("mean window", Table.Right);
        ("max window", Table.Right);
        ("TV(empirical, Gibbs)", Table.Right);
      ]
  in
  let rng = Prob.Rng.create 777 in
  let count = if quick then 300 else 2_000 in
  let cases =
    [
      ("ring-6", Graphs.Generators.ring 6, [ 0.5; 1.5 ]);
      ("clique-6", Graphs.Generators.clique 6, if quick then [ 0.5 ] else [ 0.5; 1.0 ]);
    ]
  in
  List.iter
    (fun (name, graph, betas) ->
      let desc =
        Graphical.create graph (Coordination.of_deltas ~delta0:1.0 ~delta1:0.8)
      in
      let game = Graphical.to_game desc in
      let space = Game.space game in
      List.iter
        (fun beta ->
          let emp = Prob.Empirical.create (Game.size game) in
          let windows = ref [] in
          for _ = 1 to count do
            let x, window = Logit.Perfect_sampling.coalescence_epoch rng game ~beta in
            Prob.Empirical.add emp x;
            windows := float_of_int window :: !windows
          done;
          let windows = Array.of_list !windows in
          let pi = Logit.Gibbs.stationary space (Graphical.potential desc) ~beta in
          Table.add_row table
            [
              name;
              Table.cell_float beta;
              Table.cell_float (Prob.Stats.mean windows);
              Table.cell_float (fst (Prob.Stats.min_max windows) |> fun _ ->
                                snd (Prob.Stats.min_max windows));
              Printf.sprintf "%.4f"
                (Prob.Empirical.tv_against emp (Prob.Dist.of_weights pi));
            ])
        betas)
    cases;
  Table.add_note table
    (Printf.sprintf
       "each of the %d samples is EXACTLY stationary (Propp-Wilson); the \
        backward window grows with t_mix: ring mild, clique exponential in \
        beta."
       count);
  table

let run ~quick = [ part_a ~quick; part_b ~quick ]
