(** Exact lumping of weight-symmetric logit chains to birth–death
    chains.

    When an n-player binary-strategy potential game has a potential
    that depends only on the Hamming weight w(x) — the clique
    graphical coordination game (Section 5.2) and the Theorem 3.5
    family — the weight process of the logit dynamics is itself a
    Markov chain on {0, ..., n}: from weight k, a 1-player is selected
    with probability k/n and flips to 0 with the two-point logit
    probability determined by φ(k-1) - φ(k), and symmetrically for
    0-players. This reduces exact mixing analysis from 2ⁿ states to
    n+1 states; agreement with the full chain is validated in the test
    suite.

    The distribution of w(X_t) started from a weight-w₀ profile equals
    the lumped chain's law started from w₀, and total variation can
    only decrease under the projection, so lumped mixing times are
    lower bounds on the full ones — and for these games the slow mode
    {e is} the weight coordinate (the bottleneck sets of the paper's
    lower bounds are weight level sets), so the lumped mixing time
    captures the full chain's growth in β. *)

(** [logistic x] is 1/(1+eˣ) computed stably for any magnitude. *)
val logistic : float -> float

(** [weight_symmetric ~players ~beta phi_of_weight] is the lumped
    birth–death chain of the logit dynamics for the n-player binary
    common-interest game with Φ(x) = [phi_of_weight (w x)]. *)
val weight_symmetric :
  players:int -> beta:float -> (int -> float) -> Markov.Birth_death.t

(** [stationary_weights ~players ~beta phi_of_weight] is the exact
    stationary law of the weight: π(k) ∝ C(n,k)·exp(-β·φ(k)),
    computed in the log domain. Provided independently of
    {!Markov.Birth_death.stationary} as a cross-check. *)
val stationary_weights :
  players:int -> beta:float -> (int -> float) -> float array

(** [clique ~n ~delta0 ~delta1 ~beta] lumps the clique graphical
    coordination game (Section 5.2). *)
val clique :
  n:int -> delta0:float -> delta1:float -> beta:float -> Markov.Birth_death.t

(** [curve ~game ~beta] lumps a Theorem 3.5 game. *)
val curve : game:Games.Curve_game.t -> beta:float -> Markov.Birth_death.t

(** [dominant_lower_bound ~players ~strategies ~beta] lumps the
    Theorem 4.3 game onto the number of players playing a non-zero
    strategy. Unlike the binary lumpings this one is specific to that
    game's utility structure (m strategies, flat off the origin). *)
val dominant_lower_bound :
  players:int -> strategies:int -> beta:float -> Markov.Birth_death.t

(** [log_binomial n k] is log C(n,k) (stable for large n). *)
val log_binomial : int -> int -> float
