let autocovariance xs lag =
  let n = Array.length xs in
  if lag < 0 || lag >= n then invalid_arg "Autocorr: lag out of range";
  let mean = Stats.mean xs in
  let acc = ref 0. in
  for i = 0 to n - 1 - lag do
    acc := !acc +. ((xs.(i) -. mean) *. (xs.(i + lag) -. mean))
  done;
  !acc /. float_of_int n

let autocorrelation xs lag =
  let c0 = autocovariance xs 0 in
  if c0 <= 0. then invalid_arg "Autocorr: constant series";
  autocovariance xs lag /. c0

let acf xs ~max_lag =
  if max_lag < 0 || max_lag >= Array.length xs then
    invalid_arg "Autocorr.acf: bad max_lag";
  Array.init (max_lag + 1) (fun lag -> autocorrelation xs lag)

let integrated_time xs =
  let n = Array.length xs in
  if n < 4 then invalid_arg "Autocorr.integrated_time: series too short";
  let c0 = autocovariance xs 0 in
  if c0 <= 0. then invalid_arg "Autocorr: constant series";
  (* Geyer initial positive sequence: add rho(2k-1) + rho(2k) while the
     pair sums stay positive. *)
  let tau = ref 1. in
  let k = ref 1 in
  let continue_ = ref true in
  while !continue_ && (2 * !k) < n - 1 do
    let pair =
      (autocovariance xs ((2 * !k) - 1) +. autocovariance xs (2 * !k)) /. c0
    in
    if pair > 0. then begin
      tau := !tau +. (2. *. pair);
      incr k
    end
    else continue_ := false
  done;
  !tau

let effective_sample_size xs =
  float_of_int (Array.length xs) /. integrated_time xs
