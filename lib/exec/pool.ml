type t = {
  size : int;
  queue : (unit -> unit) Queue.t;
  mutex : Mutex.t;
  nonempty : Condition.t;
  mutable closed : bool;
  mutable workers : unit Domain.t array;
  dispatches : int Atomic.t;
}

(* Work-based serial cutover. Dispatching a parallel_for costs a few
   microseconds (task submission, atomic claims, the helping-wait), so a
   pooled kernel whose whole serial runtime is of that order runs
   *slower* pooled — the BENCH_spmm.json by_power regression (0.38x at
   |S| = 1024). Every [?pool] kernel therefore estimates its work as
   [n * cost] (cost ~ inner-loop iterations per index, so a work unit is
   roughly a fused multiply-add) and falls back to the serial loop below
   the cutover. 65536 units ~ tens of microseconds of serial work, an
   order of magnitude above the dispatch cost. The value is a process
   global: settable for tests and for machines with unusually cheap or
   expensive domain wakeups, never per-call. *)
let default_serial_cutover = 65_536
let cutover = Atomic.make default_serial_cutover
let serial_cutover () = Atomic.get cutover

let set_serial_cutover n =
  if n < 0 then invalid_arg "Pool.set_serial_cutover: negative cutover";
  Atomic.set cutover n

let rec worker_loop t =
  Mutex.lock t.mutex;
  while Queue.is_empty t.queue && not t.closed do
    Condition.wait t.nonempty t.mutex
  done;
  if Queue.is_empty t.queue then Mutex.unlock t.mutex
  else begin
    let job = Queue.pop t.queue in
    Mutex.unlock t.mutex;
    job ();
    worker_loop t
  end

let create ?domains () =
  let size =
    match domains with
    | Some d -> d
    | None -> Domain.recommended_domain_count ()
  in
  if size < 1 then invalid_arg "Pool.create: need at least one domain";
  let t =
    {
      size;
      queue = Queue.create ();
      mutex = Mutex.create ();
      nonempty = Condition.create ();
      closed = false;
      workers = [||];
      dispatches = Atomic.make 0;
    }
  in
  t.workers <- Array.init (size - 1) (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

let size t = t.size
let dispatches t = Atomic.get t.dispatches

(* Saturating [n * cost >= cutover]: n and cost are both non-negative
   and bounded by array sizes / row degrees in practice, but the guard
   must not overflow for adversarial inputs. *)
let parallelize t ~cost ~n =
  if cost < 0 then invalid_arg "Pool.parallelize: negative cost";
  t.size > 1 && n > 0 && cost > 0
  && (let limit = Atomic.get cutover in
      (* n * cost >= limit, overflow-free: (limit - 1) / cost never
         overflows, unlike the product or the rounded-up quotient. *)
      limit <= 0 || n > (limit - 1) / cost)

let shutdown t =
  Mutex.lock t.mutex;
  let was_closed = t.closed in
  t.closed <- true;
  Condition.broadcast t.nonempty;
  Mutex.unlock t.mutex;
  if not was_closed then Array.iter Domain.join t.workers;
  t.workers <- [||]

let with_pool ?domains f =
  let t = create ?domains () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

let submit t job =
  Mutex.lock t.mutex;
  if t.closed then begin
    Mutex.unlock t.mutex;
    invalid_arg "Pool: pool has been shut down"
  end;
  Queue.add job t.queue;
  Condition.signal t.nonempty;
  Mutex.unlock t.mutex

let try_pop t =
  Mutex.lock t.mutex;
  let job = if Queue.is_empty t.queue then None else Some (Queue.pop t.queue) in
  Mutex.unlock t.mutex;
  job

let default_chunk size n = Int.max 1 ((n + (8 * size) - 1) / (8 * size))

let parallel_for ?chunk t ~n body =
  if n > 0 then begin
    let chunk =
      match chunk with
      | Some c -> if c < 1 then invalid_arg "Pool.parallel_for: chunk < 1" else c
      | None -> default_chunk t.size n
    in
    if t.size = 1 || n <= chunk then
      for i = 0 to n - 1 do
        body i
      done
    else begin
      if t.closed then invalid_arg "Pool: pool has been shut down";
      Atomic.incr t.dispatches;
      let next = Atomic.make 0 in
      let failure = Atomic.make None in
      (* Chunked self-scheduling: every participant claims the next
         [chunk] indices until the range is exhausted. *)
      let work () =
        let continue = ref true in
        while !continue do
          let lo = Atomic.fetch_and_add next chunk in
          if lo >= n then continue := false
          else begin
            let hi = Int.min n (lo + chunk) in
            try
              for i = lo to hi - 1 do
                body i
              done
            with e ->
              let bt = Printexc.get_raw_backtrace () in
              ignore (Atomic.compare_and_set failure None (Some (e, bt)));
              (* Abort: make every participant's next claim fail. *)
              Atomic.set next n;
              continue := false
          end
        done
      in
      let helpers = Int.min (t.size - 1) (((n + chunk - 1) / chunk) - 1) in
      let remaining = Atomic.make helpers in
      for _ = 1 to helpers do
        submit t (fun () ->
            work ();
            Atomic.decr remaining)
      done;
      work ();
      (* Help drain the queue while waiting: our helper tasks may still
         be queued behind other calls' tasks (or never get picked up at
         all on a busy pool), and running them here also keeps nested
         parallel_for calls deadlock-free. *)
      while Atomic.get remaining > 0 do
        match try_pop t with Some job -> job () | None -> Domain.cpu_relax ()
      done;
      match Atomic.get failure with
      | Some (e, bt) -> Printexc.raise_with_backtrace e bt
      | None -> ()
    end
  end

let map ?chunk t ~n f =
  if n < 0 then invalid_arg "Pool.map: negative size";
  if n = 0 then [||]
  else begin
    let out = Array.make n (f 0) in
    parallel_for ?chunk t ~n:(n - 1) (fun i -> out.(i + 1) <- f (i + 1));
    out
  end

let reduce ?chunk t ~n ~map:f ~combine ~init =
  if n <= 0 then init
  else begin
    (* The chunking depends only on [n], never on the pool size, so the
       association of [combine] — and hence the floating-point result —
       is identical across pool sizes. *)
    let chunk =
      match chunk with
      | Some c -> if c < 1 then invalid_arg "Pool.reduce: chunk < 1" else c
      | None -> Int.max 1 ((n + 63) / 64)
    in
    let chunks = (n + chunk - 1) / chunk in
    let partials =
      map t ~n:chunks (fun c ->
          let lo = c * chunk in
          let hi = Int.min n (lo + chunk) in
          let acc = ref (f lo) in
          for i = lo + 1 to hi - 1 do
            acc := combine !acc (f i)
          done;
          !acc)
    in
    Array.fold_left combine init partials
  end

let iter_opt ?(cost = 1) pool ~n body =
  match pool with
  | Some t when parallelize t ~cost ~n -> parallel_for t ~n body
  | _ ->
      for i = 0 to n - 1 do
        body i
      done

let init_opt ?(cost = 1) pool ~n f =
  match pool with
  | Some t when parallelize t ~cost ~n -> map t ~n f
  | _ -> Array.init n f
