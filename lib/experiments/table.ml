type align = Left | Right

type t = {
  title : string;
  headers : string list;
  aligns : align list;
  mutable rows : string list list;  (* reversed *)
  mutable notes : string list;      (* reversed *)
}

let create ~title columns =
  if columns = [] then invalid_arg "Table.create: no columns";
  {
    title;
    headers = List.map fst columns;
    aligns = List.map snd columns;
    rows = [];
    notes = [];
  }

let add_row t cells =
  if List.length cells <> List.length t.headers then
    invalid_arg "Table.add_row: wrong cell count";
  t.rows <- cells :: t.rows

let add_note t note = t.notes <- note :: t.notes

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else
    let fill = String.make (width - n) ' ' in
    match align with Left -> s ^ fill | Right -> fill ^ s

let render t =
  let rows = List.rev t.rows in
  let widths =
    List.fold_left
      (fun widths row -> List.map2 (fun w c -> Int.max w (String.length c)) widths row)
      (List.map String.length t.headers)
      rows
  in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf ("== " ^ t.title ^ " ==\n");
  let render_row cells =
    let parts =
      List.map2
        (fun (cell, align) width -> pad align width cell)
        (List.combine cells t.aligns)
        widths
    in
    Buffer.add_string buf (String.concat "  " parts);
    Buffer.add_char buf '\n'
  in
  render_row t.headers;
  let rule = List.map (fun w -> String.make w '-') widths in
  Buffer.add_string buf (String.concat "  " rule);
  Buffer.add_char buf '\n';
  List.iter render_row rows;
  List.iter
    (fun note -> Buffer.add_string buf ("  note: " ^ note ^ "\n"))
    (List.rev t.notes);
  Buffer.contents buf

let print t = print_string (render t)

let cell_int = string_of_int
let cell_float x = Printf.sprintf "%.4g" x
let cell_sci x = Printf.sprintf "%.3e" x
let cell_log x = Printf.sprintf "%.2f" x
let cell_bool b = if b then "yes" else "no"
let cell_opt_int = function Some n -> string_of_int n | None -> ">max"
